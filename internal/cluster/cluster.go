// Package cluster is the distributed-storage capstone made real: a
// replicated key-value cluster of N live sockets.Server nodes on real
// TCP ports, routed by a smart client. It composes the layers the
// courses build one by one — the consistent-hash ring with virtual
// nodes (db.DHT.NodesFor) picks R replicas per key, writes and reads go
// through per-node sockets.Pool clients under W/R quorums (W+R > N so
// read and write sets intersect), heartbeat probes mark silent nodes
// down and route around them, writes that miss a dead replica leave
// hinted handoffs on the next live node and replay them on recovery,
// and node join/leave migrates only the ~K/n keys whose arcs moved,
// fanned out in parallel on a sched.Pool.
//
// Values carry a per-cluster write sequence number so quorum reads
// resolve divergent replicas by last-write-wins; the db.DHT doubles as
// the ring metadata, so its Moves() counter certifies the minimal-
// movement property on every topology change.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/sched"
	"repro/internal/sockets"
)

// Config parameterizes a Cluster. The zero value gets the defaults
// noted per field.
type Config struct {
	// Nodes is the initial node count (default 3).
	Nodes int
	// Replicas is how many distinct nodes hold each key (default
	// min(3, Nodes)).
	Replicas int
	// WriteQuorum (W) and ReadQuorum (R) are how many replica acks a
	// write/read needs. Defaults are majorities (Replicas/2 + 1); New
	// rejects configurations without W+R > Replicas, the overlap that
	// makes a quorum read see the newest quorum write.
	WriteQuorum int
	ReadQuorum  int
	// VNodes is the virtual-node count per node on the ring (default 64).
	VNodes int
	// HeartbeatInterval is the probe period of the failure detector;
	// HeartbeatTimeout is the per-probe deadline after which a node is
	// declared down (defaults 50ms and 250ms).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Workers sizes the sched.Pool that fans out key migration on
	// join/leave (default: runtime.NumCPU()).
	Workers int
	// PoolSize, PoolTimeout, and PoolAttempts parameterize each node's
	// sockets.Pool client (defaults 2 connections, 500ms, 2 attempts).
	PoolSize     int
	PoolTimeout  time.Duration
	PoolAttempts int
	// ServerShards is each node's store-stripe count (default 8).
	ServerShards int

	// serverPreHandle is a test hook: when non-nil it supplies each
	// named node's sockets.ServerConfig.PreHandle, letting tests make a
	// replica deliberately slow (the quorum-abort laggard).
	serverPreHandle func(name string) func(req string)
}

// Errors the cluster operations return.
var (
	ErrClosed      = errors.New("cluster: closed")
	ErrNoQuorum    = errors.New("cluster: quorum not reached")
	ErrUnknownNode = errors.New("cluster: unknown node")
	ErrReservedKey = errors.New("cluster: keys must not start with the hint prefix")
)

// hintMark prefixes hinted-handoff keys: hint~<destNode>~<origKey>.
const hintMark = "hint~"

func hintKey(dest, key string) string { return hintMark + dest + "~" + key }

// node is one cluster member: a live server plus the pooled client the
// router uses to reach it. srv/pool/addr swap on Kill/Restart under mu;
// down is owned by the failure detector.
type node struct {
	name string

	mu   sync.Mutex
	srv  *sockets.Server
	pool *sockets.Pool
	addr string

	down   atomic.Bool
	killed atomic.Bool
}

// client returns the node's current pooled client.
func (n *node) client() *sockets.Pool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pool
}

// address returns the node's current listen address.
func (n *node) address() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addr
}

// server returns the node's current server (still readable for stats
// after a kill).
func (n *node) server() *sockets.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// Cluster runs the nodes and routes requests to them.
type Cluster struct {
	cfg Config

	// topoMu guards the ring, the tracked key set, and the membership
	// tables. Request paths hold it only to compute placement; all
	// network traffic happens outside it.
	topoMu sync.RWMutex
	ring   *db.DHT
	keys   map[string]struct{}
	nodes  map[string]*node
	order  []string // join order, for stable iteration and reports

	sched *sched.Pool
	seq   atomic.Int64 // write sequence for last-write-wins resolution

	// ctx is the cluster lifetime: canceled by Close, it interrupts the
	// heartbeat loop mid-probe, aborts hint replay and key migration,
	// and bounds every background network wait.
	ctx    context.Context
	cancel context.CancelFunc
	hbWG   sync.WaitGroup
	closed atomic.Bool

	puts           atomic.Int64
	gets           atomic.Int64
	quorumFailures atomic.Int64
	opsCanceled    atomic.Int64
	hintedWrites   atomic.Int64
	hintsReplayed  atomic.Int64
	downEvents     atomic.Int64
	upEvents       atomic.Int64
	keysMigrated   atomic.Int64
}

// New starts a cluster of cfg.Nodes servers named node0..nodeN-1 and
// its background failure detector.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
		if cfg.Replicas > cfg.Nodes {
			cfg.Replicas = cfg.Nodes
		}
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.Replicas/2 + 1
	}
	if cfg.ReadQuorum <= 0 {
		cfg.ReadQuorum = cfg.Replicas/2 + 1
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 50 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 250 * time.Millisecond
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.PoolTimeout <= 0 {
		cfg.PoolTimeout = 500 * time.Millisecond
	}
	if cfg.PoolAttempts <= 0 {
		cfg.PoolAttempts = 2
	}
	if cfg.ServerShards <= 0 {
		cfg.ServerShards = 8
	}
	if cfg.Replicas > cfg.Nodes {
		return nil, fmt.Errorf("cluster: %d replicas need at least that many nodes (have %d)", cfg.Replicas, cfg.Nodes)
	}
	if cfg.WriteQuorum > cfg.Replicas || cfg.ReadQuorum > cfg.Replicas {
		return nil, fmt.Errorf("cluster: quorums W=%d R=%d cannot exceed %d replicas", cfg.WriteQuorum, cfg.ReadQuorum, cfg.Replicas)
	}
	if cfg.WriteQuorum+cfg.ReadQuorum <= cfg.Replicas {
		return nil, fmt.Errorf("cluster: W=%d + R=%d must exceed %d replicas for read/write overlap", cfg.WriteQuorum, cfg.ReadQuorum, cfg.Replicas)
	}

	ring, err := db.NewDHT(cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		ring:  ring,
		keys:  make(map[string]struct{}),
		nodes: make(map[string]*node),
		sched: sched.New(cfg.Workers),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node%d", i)
		n, err := c.startNode(name)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.ring.AddNode(name) //nolint:errcheck // names are unique by construction
		c.nodes[name] = n
		c.order = append(c.order, name)
	}
	c.hbWG.Add(1)
	go c.heartbeatLoop()
	return c, nil
}

// startNode boots one server plus its pooled client.
func (c *Cluster) startNode(name string) (*node, error) {
	scfg := sockets.ServerConfig{
		Shards:       c.cfg.ServerShards,
		DrainTimeout: time.Second,
	}
	if c.cfg.serverPreHandle != nil {
		scfg.PreHandle = c.cfg.serverPreHandle(name)
	}
	srv, err := sockets.NewServerConfig("127.0.0.1:0", scfg)
	if err != nil {
		return nil, err
	}
	pool, err := sockets.NewPool(srv.Addr(), c.poolConfig())
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &node{name: name, srv: srv, pool: pool, addr: srv.Addr()}, nil
}

func (c *Cluster) poolConfig() sockets.PoolConfig {
	return sockets.PoolConfig{
		Size:        c.cfg.PoolSize,
		MaxAttempts: c.cfg.PoolAttempts,
		Timeout:     c.cfg.PoolTimeout,
	}
}

// Close cancels the cluster context — interrupting an in-progress
// heartbeat probe, hint replay, or migration instead of waiting out
// their timeouts — then stops the node servers and clients and the
// migration pool.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.cancel()
	c.hbWG.Wait()
	c.topoMu.Lock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.topoMu.Unlock()
	for _, n := range nodes {
		n.client().Close()
		n.server().Close()
	}
	c.sched.Close()
}

// Nodes returns the member names in join order.
func (c *Cluster) Nodes() []string {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return append([]string(nil), c.order...)
}

// Moves reports how many keys topology changes have migrated so far —
// the ring-metadata counter that certifies the ~K/n movement property.
func (c *Cluster) Moves() int64 {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.ring.Moves()
}

func (c *Cluster) validateKey(key string) error {
	if strings.HasPrefix(key, hintMark) {
		return fmt.Errorf("%w: %q", ErrReservedKey, key)
	}
	// Apply the wire protocol's key rules before the key reaches the
	// ring metadata, so a rejected key can't leave placement state.
	if key == "" || strings.ContainsAny(key, " \t\n\r") {
		return fmt.Errorf("%w: %q", sockets.ErrBadKey, key)
	}
	return nil
}

// encode stamps a value with its write sequence: "<seq> <value>".
func encode(seq int64, value string) string {
	return strconv.FormatInt(seq, 10) + " " + value
}

// decode splits a stored value back into sequence and payload.
func decode(raw string) (seq int64, value string, err error) {
	i := strings.IndexByte(raw, ' ')
	if i < 0 {
		return 0, "", fmt.Errorf("cluster: unversioned value %q", raw)
	}
	seq, err = strconv.ParseInt(raw[:i], 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("cluster: bad version in %q", raw)
	}
	return seq, raw[i+1:], nil
}

// placement is the routing decision for one key: its replica set and
// the fallback nodes hints can land on.
type placement struct {
	replicas  []*node
	fallbacks []*node
}

// place computes a key's replicas and fallbacks under the topology lock.
func (c *Cluster) place(key string) placement {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.placeLocked(key)
}

func (c *Cluster) placeLocked(key string) placement {
	prefs := c.ring.NodesFor(key, len(c.order))
	var p placement
	for i, name := range prefs {
		n := c.nodes[name]
		if i < c.cfg.Replicas {
			p.replicas = append(p.replicas, n)
		} else {
			p.fallbacks = append(p.fallbacks, n)
		}
	}
	return p
}

// Put stores key = value on a write quorum of its replicas with no
// caller deadline. It wraps PutCtx with context.Background().
func (c *Cluster) Put(key, value string) error {
	return c.PutCtx(context.Background(), key, value)
}

// PutCtx stores key = value on a write quorum of its replicas under
// ctx. Replicas that are down (or fail mid-write) receive hinted
// handoffs on the next live fallback node; a hinted write counts toward
// the (sloppy) quorum. The replica fan-out runs under a per-op context
// that is canceled the moment W acks arrive, so a slow replica costs
// the write nothing beyond quorum time — its in-flight request is
// abandoned, not waited out. ErrNoQuorum reports a write that fewer
// than W replicas acknowledged; a canceled or expired ctx surfaces as
// an error wrapping ctx.Err().
func (c *Cluster) PutCtx(ctx context.Context, key, value string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if err := c.validateKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		c.opsCanceled.Add(1)
		return fmt.Errorf("cluster: put %q aborted: %w", key, err)
	}
	seq := c.seq.Add(1)
	enc := encode(seq, value)

	c.topoMu.Lock()
	if err := c.ring.Put(key, ""); err != nil {
		c.topoMu.Unlock()
		return err
	}
	c.keys[key] = struct{}{}
	p := c.placeLocked(key)
	c.topoMu.Unlock()
	c.puts.Add(1)

	opCtx, cancel := context.WithCancel(ctx)
	defer cancel() // reached with quorum: the laggards' requests abort now
	acks := make(chan bool, len(p.replicas))
	for _, target := range p.replicas {
		go func(target *node) {
			acks <- c.writeReplica(opCtx, key, enc, target, p.fallbacks)
		}(target)
	}
	got := 0
	for pending := len(p.replicas); pending > 0; pending-- {
		select {
		case ok := <-acks:
			if ok {
				got++
			}
		case <-ctx.Done():
			c.opsCanceled.Add(1)
			return fmt.Errorf("cluster: put %q canceled at %d/%d write acks: %w",
				key, got, c.cfg.WriteQuorum, ctx.Err())
		}
		if got >= c.cfg.WriteQuorum {
			return nil
		}
	}
	c.quorumFailures.Add(1)
	return fmt.Errorf("%w: %d/%d write acks for %q", ErrNoQuorum, got, c.cfg.WriteQuorum, key)
}

// writeReplica lands one replica's copy: directly when the node is
// healthy, as a hinted handoff on the first live fallback when not.
// ctx is the per-op fan-out context; once it is canceled (quorum
// reached or caller gone) the remaining network attempts abort.
func (c *Cluster) writeReplica(ctx context.Context, key, enc string, target *node, fallbacks []*node) bool {
	if !target.down.Load() {
		if err := target.client().SetCtx(ctx, key, enc); err == nil {
			return true
		}
	}
	if ctx.Err() != nil {
		return false // canceled: don't burn fallbacks on a dead op
	}
	hk := hintKey(target.name, key)
	for _, f := range fallbacks {
		if f.down.Load() {
			continue
		}
		if err := f.client().SetCtx(ctx, hk, enc); err == nil {
			c.hintedWrites.Add(1)
			return true
		}
		if ctx.Err() != nil {
			return false
		}
	}
	return false
}

// Get reads key from a read quorum of its replicas with no caller
// deadline. It wraps GetCtx with context.Background().
func (c *Cluster) Get(key string) (value string, found bool, err error) {
	return c.GetCtx(context.Background(), key)
}

// GetCtx reads key from a read quorum of its replicas under ctx and
// returns the newest version seen (last-write-wins by sequence number).
// Replies are consumed as they arrive; the R-th answer resolves the
// read and cancels the stragglers — quorum intersection (W+R >
// Replicas) already guarantees the newest quorum write is among any R
// distinct replica answers. found is false when a quorum agrees the key
// does not exist; ErrNoQuorum reports fewer than R reachable replicas;
// a canceled or expired ctx surfaces as an error wrapping ctx.Err().
func (c *Cluster) GetCtx(ctx context.Context, key string) (value string, found bool, err error) {
	if c.closed.Load() {
		return "", false, ErrClosed
	}
	if err := c.validateKey(key); err != nil {
		return "", false, err
	}
	if err := ctx.Err(); err != nil {
		c.opsCanceled.Add(1)
		return "", false, fmt.Errorf("cluster: get %q aborted: %w", key, err)
	}
	p := c.place(key)
	c.gets.Add(1)

	type resp struct {
		seq   int64
		value string
		found bool
		err   error
	}
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	resps := make(chan resp, len(p.replicas))
	for _, n := range p.replicas {
		go func(n *node) {
			if n.down.Load() {
				resps <- resp{err: fmt.Errorf("cluster: node %s is down", n.name)}
				return
			}
			raw, ok, err := n.client().GetCtx(opCtx, key)
			if err != nil {
				resps <- resp{err: err}
				return
			}
			if !ok {
				resps <- resp{} // a valid "not here" answer
				return
			}
			seq, v, err := decode(raw)
			if err != nil {
				resps <- resp{err: err}
				return
			}
			resps <- resp{seq: seq, value: v, found: true}
		}(n)
	}

	answered := 0
	var best resp
	for pending := len(p.replicas); pending > 0; pending-- {
		select {
		case r := <-resps:
			if r.err != nil {
				continue
			}
			answered++
			if r.found && (!best.found || r.seq > best.seq) {
				best = r
			}
		case <-ctx.Done():
			c.opsCanceled.Add(1)
			return "", false, fmt.Errorf("cluster: get %q canceled at %d/%d read answers: %w",
				key, answered, c.cfg.ReadQuorum, ctx.Err())
		}
		if answered >= c.cfg.ReadQuorum {
			return best.value, best.found, nil
		}
	}
	c.quorumFailures.Add(1)
	return "", false, fmt.Errorf("%w: %d/%d read answers for %q", ErrNoQuorum, answered, c.cfg.ReadQuorum, key)
}

// lookup resolves a node by name.
func (c *Cluster) lookup(name string) (*node, error) {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	n, ok := c.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	return n, nil
}

// Kill crash-stops a node's server and client — the fault-injection
// hook. The ring is unchanged; the failure detector (or an explicit
// Probe) notices the silence and routes around it.
func (c *Cluster) Kill(name string) error {
	n, err := c.lookup(name)
	if err != nil {
		return err
	}
	if n.killed.Swap(true) {
		return fmt.Errorf("cluster: node %q already killed", name)
	}
	n.client().Close()
	n.server().Close()
	return nil
}

// Restart brings a killed node back empty (the process model: in-memory
// state dies with the process) on a fresh port, then probes it so
// hinted handoffs replay before Restart returns.
func (c *Cluster) Restart(name string) error {
	n, err := c.lookup(name)
	if err != nil {
		return err
	}
	if !n.killed.Load() {
		return fmt.Errorf("cluster: node %q is not killed", name)
	}
	fresh, err := c.startNode(name)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.srv, n.pool, n.addr = fresh.srv, fresh.pool, fresh.addr
	n.mu.Unlock()
	n.killed.Store(false)
	c.probeNode(n)
	// The node may never have been marked down (killed and restarted
	// between probes) yet still have hints parked from failed direct
	// writes; replay is idempotent, so sweep again unconditionally.
	c.replayHints(c.ctx, n)
	return nil
}
