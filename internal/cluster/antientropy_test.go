package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/version"
)

// syncUntilQuiet drives SyncNow until a pass repairs nothing, returning
// the total repaired count. Fails the test if convergence takes more
// than rounds passes — anti-entropy must converge, not oscillate.
func syncUntilQuiet(t *testing.T, c *Cluster, rounds int) int {
	t.Helper()
	total := 0
	for i := 0; i < rounds; i++ {
		n, err := c.SyncNow(context.Background())
		if err != nil {
			t.Fatalf("SyncNow: %v", err)
		}
		if n == 0 {
			return total
		}
		total += n
	}
	t.Fatalf("anti-entropy did not converge within %d passes", rounds)
	return total
}

// TestAntiEntropy_RepairsDeletedCopies diverges one replica by deleting
// a slice of its copies behind the cluster's back, then checks one sync
// pass restores exactly those copies byte-identically.
func TestAntiEntropy_RepairsDeletedCopies(t *testing.T) {
	c, err := New(Config{Nodes: 3, Replicas: 3, WriteQuorum: 3, ReadQuorum: 1, DisableHints: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	victim, _ := c.lookup("node1")
	witness, _ := c.lookup("node0")
	var lost []string
	for i := 0; i < 50; i++ {
		lost = append(lost, fmt.Sprintf("key-%d", i))
	}
	if _, err := victim.client().MDelCtx(context.Background(), lost...); err != nil {
		t.Fatal(err)
	}

	repaired := syncUntilQuiet(t, c, 5)
	if repaired != len(lost) {
		t.Errorf("repaired %d copies, want exactly %d (sync must move only the divergence)", repaired, len(lost))
	}
	for _, key := range lost {
		want, ok1, err1 := witness.client().GetCtx(context.Background(), key)
		got, ok2, err2 := victim.client().GetCtx(context.Background(), key)
		if err1 != nil || err2 != nil || !ok1 || !ok2 {
			t.Fatalf("%s after repair: witness (%v,%v) victim (%v,%v)", key, ok1, err1, ok2, err2)
		}
		if got != want {
			t.Fatalf("%s repaired copy = %q, want byte-identical %q", key, got, want)
		}
	}
	if c.AntiEntropyRepaired() != int64(len(lost)) {
		t.Errorf("antientropy.keys-repaired = %d, want %d", c.AntiEntropyRepaired(), len(lost))
	}
	if c.AntiEntropyBytes() == 0 {
		t.Error("antientropy.bytes not accounted")
	}
}

// TestAntiEntropy_HealsRestartedNode is the convergence path the
// heal-converge chaos scenario depends on: with hints disabled, a
// memory-only node that restarts empty is rebuilt entirely by
// anti-entropy.
func TestAntiEntropy_HealsRestartedNode(t *testing.T) {
	c, err := New(Config{
		Nodes: 3, Replicas: 3, WriteQuorum: 2, ReadQuorum: 2,
		DisableHints: true, DrainTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 100
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Kill("node2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart("node2"); err != nil {
		t.Fatal(err)
	}
	n, _ := c.lookup("node2")
	if got, err := n.client().Count(); err != nil || got != 0 {
		t.Fatalf("restarted memory-only node holds %d keys (err %v), want 0 before sync", got, err)
	}

	syncUntilQuiet(t, c, 5)
	if got, err := n.client().Count(); err != nil || got != keys {
		t.Fatalf("restarted node holds %d keys after sync (err %v), want %d", got, err, keys)
	}
}

// TestAntiEntropy_ConcurrentVersionsConvergeDeterministically injects
// two causally concurrent versions of one key onto different replicas —
// the divergence a partition produces — and checks every replica
// converges to the same winner: the one the deterministic tiebreak
// picks, byte-identical everywhere.
func TestAntiEntropy_ConcurrentVersionsConvergeDeterministically(t *testing.T) {
	c, err := New(Config{Nodes: 3, Replicas: 3, WriteQuorum: 3, ReadQuorum: 1, DisableHints: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("k", "base"); err != nil {
		t.Fatal(err)
	}
	n0, _ := c.lookup("node0")
	raw, ok, err := n0.client().GetCtx(context.Background(), "k")
	if err != nil || !ok {
		t.Fatalf("base read: %v %v", ok, err)
	}
	base, _, _, err := version.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Two successors of base bumped in different coordinator slots:
	// incomparable vectors, resolved by the clock tiebreak (vb wins).
	va := base.Next("cA", 100)
	vb := base.Next("cB", 200)
	if va.Compare(vb) != version.Concurrent {
		t.Fatalf("injected versions compare %v, want concurrent", va.Compare(vb))
	}
	n1, _ := c.lookup("node1")
	if _, err := n0.client().SetVCtx(context.Background(), "k", version.Encode(va, "value-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.client().SetVCtx(context.Background(), "k", version.Encode(vb, "value-b")); err != nil {
		t.Fatal(err)
	}

	syncUntilQuiet(t, c, 5)
	want := version.Encode(vb, "value-b")
	for _, name := range c.Nodes() {
		n, _ := c.lookup(name)
		got, ok, err := n.client().GetCtx(context.Background(), "k")
		if err != nil || !ok {
			t.Fatalf("%s read after sync: %v %v", name, ok, err)
		}
		if got != want {
			t.Fatalf("%s converged to %q, want tiebreak winner %q", name, got, want)
		}
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || v != "value-b" {
		t.Fatalf("cluster read after convergence = (%q, %v, %v), want value-b", v, ok, err)
	}
}

// TestReadRepair_RewritesStaleReplica knocks one replica's copy out
// behind the cluster's back and checks a full-set quorum read (R =
// Replicas, so the stale replica must answer) repairs it in the
// background.
func TestReadRepair_RewritesStaleReplica(t *testing.T) {
	c, err := New(Config{Nodes: 3, Replicas: 3, WriteQuorum: 3, ReadQuorum: 3, DisableHints: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	victim, _ := c.lookup("node1")
	if _, err := victim.client().DelCtx(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || v != "v" {
		t.Fatalf("quorum read with one stale replica = (%q, %v, %v)", v, ok, err)
	}
	// The repair (and its counter bump) is asynchronous; poll for both.
	deadline := time.Now().Add(2 * time.Second)
	for {
		raw, ok, err := victim.client().GetCtx(context.Background(), "k")
		if err == nil && ok && c.ReadRepairs() > 0 {
			if _, v, _, err := version.Decode(raw); err != nil || v != "v" {
				t.Fatalf("repaired copy decodes to (%q, %v)", v, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("read repair never restored the stale copy (ok=%v repairs=%d)", ok, c.ReadRepairs())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
