package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/testutil"
)

// TestClusterKillMidLoadIntegration is the failure-path integration
// test: a node dies in the middle of concurrent load, quorum traffic
// keeps succeeding, the node restarts and catches up via hinted
// handoff, and tearing the whole cluster down leaks no goroutines.
func TestClusterKillMidLoadIntegration(t *testing.T) {
	base := testutil.SettleGoroutines()

	cfg := testConfig(4)
	cfg.Replicas = 3
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 4
		opsPerWriter = 60
		killAfterOps = 40 // total ops before the node dies mid-load
		keyRange     = 100
	)
	var total atomic.Int64
	var failures atomic.Int64
	killed := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				k := fmt.Sprintf("key-%d", (w*opsPerWriter+i)%keyRange)
				if err := c.Put(k, fmt.Sprintf("w%d-%d", w, i)); err != nil {
					failures.Add(1)
				}
				if _, _, err := c.Get(k); err != nil {
					failures.Add(1)
				}
				if total.Add(2) >= killAfterOps {
					select {
					case killed <- struct{}{}:
					default:
					}
				}
			}
		}(w)
	}
	<-killed
	if err := c.Kill("node3"); err != nil {
		t.Fatal(err)
	}
	c.Probe() // detect deterministically; load keeps running meanwhile
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d quorum ops failed during a single-node outage", f)
	}

	// Every key must still read back under quorum with node3 dead.
	for i := 0; i < keyRange; i++ {
		if _, ok, err := c.Get(fmt.Sprintf("key-%d", i)); err != nil || !ok {
			t.Fatalf("key-%d unreadable after mid-load kill (%v, %v)", i, ok, err)
		}
	}

	// Restart: hinted writes must replay onto the recovered node.
	if err := c.Restart("node3"); err != nil {
		t.Fatal(err)
	}
	if hinted, _ := c.Counters().Get("cluster.hinted-writes"); hinted == 0 {
		t.Error("mid-load kill produced no hinted writes")
	}
	if replayed, _ := c.Counters().Get("cluster.hints-replayed"); replayed == 0 {
		t.Error("restart replayed no hints")
	}
	// And the recovered node serves quorum traffic again.
	for i := 0; i < keyRange; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), "final"); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok, err := c.Get("key-0"); err != nil || !ok || v != "final" {
		t.Fatalf("post-recovery read = (%q, %v, %v)", v, ok, err)
	}

	c.Close()
	after := testutil.SettleGoroutines()
	if after > base+2 {
		t.Fatalf("goroutines grew from %d to %d after Close (leak)", base, after)
	}
}

func BenchmarkClusterPutGet(b *testing.B) {
	cfg := Config{Nodes: 3, VNodes: 32, Workers: 4}
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("key-%d", i%64)
		if err := c.Put(k, "value"); err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.Get(k); err != nil {
			b.Fatal(err)
		}
	}
}
