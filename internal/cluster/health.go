package cluster

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sockets"
	"repro/internal/version"
)

// heartbeatLoop is the failure detector: every HeartbeatInterval it
// probes all members and flips their up/down state. The cluster context
// ends the loop — and, because every probe runs under that context,
// Close interrupts an in-progress heartbeat wait instead of sitting out
// the rest of the current HeartbeatTimeout.
func (c *Cluster) heartbeatLoop() {
	defer c.hbWG.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	// The hint-TTL sweep rides the same loop on a slower ticker: often
	// enough that an expired hint outlives its TTL by at most ~TTL/4,
	// rare enough that the KEYS scans cost the steady state nothing.
	var sweep <-chan time.Time
	if c.cfg.HintTTL > 0 {
		ivl := c.cfg.HintTTL / 4
		if ivl < c.cfg.HeartbeatInterval {
			ivl = c.cfg.HeartbeatInterval
		}
		st := time.NewTicker(ivl)
		defer st.Stop()
		sweep = st.C
	}
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.Probe()
		case <-sweep:
			c.sweepExpiredHints()
		}
	}
}

// Probe runs one synchronous failure-detection sweep over every node —
// what the heartbeat loop does on each tick, exposed so tests and
// benches can make detection deterministic instead of sleeping.
func (c *Cluster) Probe() {
	c.topoMu.RLock()
	nodes := make([]*node, 0, len(c.order))
	for _, name := range c.order {
		nodes = append(nodes, c.nodes[name])
	}
	c.topoMu.RUnlock()
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			c.probeNode(n)
		}(n)
	}
	wg.Wait()
}

// probeNode pings one node and applies the state transition: silence
// marks it down (writes start hinting, reads route around it); a
// successful probe of a down node marks it up again and replays any
// hinted handoffs parked for it. Reports whether the node answered. A
// probe cut short by cluster shutdown changes no state.
//
// The verdict only applies if the node is still the incarnation the
// probe started against: Kill and Restart bump the node epoch, and a
// stale probe — its connection cut mid-ping by Kill, or its target port
// already replaced by Restart — must not overwrite the fresh
// incarnation's state. Without the guard, a Restart racing an in-flight
// probe left the recovered node spuriously marked down until the next
// heartbeat swept by.
func (c *Cluster) probeNode(n *node) bool {
	epoch := n.epoch.Load()
	err := probeAddr(c.ctx, n.address(), c.cfg.HeartbeatTimeout)
	if c.ctx.Err() != nil {
		return false // shutting down: an interrupted probe proves nothing
	}
	if n.epoch.Load() != epoch {
		return false // killed or restarted mid-probe: verdict is about a dead incarnation
	}
	if err != nil {
		if !n.down.Swap(true) {
			c.downEvents.Add(1)
			c.emit(EventDown, n.name, "")
		}
		return false
	}
	if n.down.Load() {
		// Replay before flipping up so a write racing the transition
		// still hints (replay is version-conditional, so re-applying is
		// harmless).
		c.replayHints(c.ctx, n)
		if n.epoch.Load() != epoch {
			return false // node churned during the replay sweep
		}
		n.down.Store(false)
		c.upEvents.Add(1)
		c.emit(EventUp, n.name, "")
	}
	return true
}

// probeAddr round-trips one PING on a dedicated connection, off to the
// side of the request pools, so a wedged pool cannot mask a live node
// (or vice versa). The wait is min(timeout, ctx): cluster shutdown
// interrupts a probe mid-dial or mid-read.
func probeAddr(ctx context.Context, addr string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	cl, err := sockets.DialCtx(ctx, addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	return cl.PingCtx(ctx)
}

// replayHints scans the other members for hinted handoffs parked for
// dest, applies every hint that is newer than what dest holds, and
// deletes the consumed hints. Returns how many hints were applied. The
// sweep aborts between (and inside) per-node scans once ctx is done.
func (c *Cluster) replayHints(ctx context.Context, dest *node) int {
	prefix := hintMark + dest.name + "~"
	c.topoMu.RLock()
	holders := make([]*node, 0, len(c.order))
	for _, name := range c.order {
		if n := c.nodes[name]; n != dest {
			holders = append(holders, n)
		}
	}
	c.topoMu.RUnlock()

	applied := 0
	for _, holder := range holders {
		if ctx.Err() != nil {
			break
		}
		if holder.down.Load() {
			continue
		}
		keys, err := holder.client().KeysCtx(ctx)
		if err != nil {
			continue
		}
		hintKeys := keys[:0]
		for _, hk := range keys {
			if strings.HasPrefix(hk, prefix) {
				hintKeys = append(hintKeys, hk)
			}
		}
		if len(hintKeys) == 0 {
			continue
		}
		// One batched fetch for the whole parked set. On the binary
		// protocol this is a single MGET PDU per chunk; on text it
		// degrades to sequential GETs inside the pool, so the sweep's
		// behavior is identical either way.
		vals, found, err := holder.client().MGetCtx(ctx, hintKeys...)
		if err != nil {
			continue
		}
		var consumed []string
		expired := 0
		for i, hk := range hintKeys {
			if !found[i] {
				continue // consumed by a concurrent sweep
			}
			key := strings.TrimPrefix(hk, prefix)
			born, raw, ok := hintParse(vals[i])
			if !ok {
				consumed = append(consumed, hk) // unparseable: can never replay
				continue
			}
			if c.hintExpired(born) {
				// Past the TTL: the sweep would have dropped it; finding it
				// here first changes nothing.
				expired++
				consumed = append(consumed, hk)
				continue
			}
			switch c.applyHint(ctx, dest, key, raw) {
			case hintApplied:
				applied++
				consumed = append(consumed, hk)
			case hintStale:
				// Older than what dest already holds: dead weight,
				// delete without applying.
				consumed = append(consumed, hk)
			case hintFailed:
				// Transport failure (dest may have died again mid-
				// replay): the hint still counts toward a past write's
				// sloppy quorum, so it MUST survive for the next sweep —
				// consuming it here would silently drop an acknowledged
				// write.
			}
		}
		if len(consumed) > 0 {
			holder.client().MDelCtx(ctx, consumed...) //nolint:errcheck // best effort cleanup
		}
		c.hintsExpired.Add(int64(expired))
	}
	c.hintsReplayed.Add(int64(applied))
	if applied > 0 {
		c.emit(EventHintReplay, dest.name, strconv.Itoa(applied)+" hints")
	}
	return applied
}

// hintOutcome classifies one hint's replay attempt.
type hintOutcome int

const (
	hintApplied hintOutcome = iota // written to the home node
	hintStale                      // home node already holds a version at least as new
	hintFailed                     // malformed or transport failure: keep the hint
)

// applyHint replays one hinted value onto its home node with a single
// version-conditional SETV: the node compares the hint's version vector
// against what it stores, under its own shard lock, and applies only if
// the hint wins. This replaces the seed's read-compare-write sequence,
// which had two defects the vectors expose: it was a TOCTOU race (the
// node could absorb a newer write between the GET and the SET), and its
// integer comparison `cur >= hint` silently dropped hints whose history
// was *concurrent* with the stored one — with vectors those compare
// incomparable, the deterministic tiebreak picks the same winner on
// every replica, and either way the outcome is counted
// (hints.concurrent) instead of being misread as plain staleness.
func (c *Cluster) applyHint(ctx context.Context, dest *node, key, raw string) hintOutcome {
	if _, _, _, err := version.Decode(raw); err != nil {
		return hintFailed
	}
	code, err := dest.client().SetVCtx(ctx, key, raw)
	if err != nil {
		return hintFailed
	}
	switch code {
	case sockets.SetVAppliedConcurrent:
		c.hintsConcurrent.Add(1)
		return hintApplied
	case sockets.SetVStaleConcurrent:
		c.hintsConcurrent.Add(1)
		return hintStale
	case sockets.SetVApplied:
		return hintApplied
	}
	return hintStale
}
