package cluster

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/version"
)

// cacheShards spreads the hot-key cache over independently locked
// stripes (same motive as the server's store shards: zipfian read
// traffic must not serialize on one mutex — though the hottest key
// still lands on one stripe, the lock is held for a map lookup, not a
// network round trip).
const cacheShards = 16

// hotCache is the client-side hot-key read cache: a small sharded LRU
// holding only keys whose observed read rate crossed a threshold, each
// entry carrying a short lease. It exists for exactly one traffic
// shape — zipfian read-heavy — where a handful of keys absorb most of
// the quorum fan-outs; serving those from memory converts ~R replica
// round trips per hot read into zero.
//
// Coherence model (DESIGN.md §7 has the full argument):
//
//   - A read-populated entry's lease is anchored at the quorum read's
//     START, not at insertion: expires = readStart + lease. Any write
//     W2 that could make the entry stale must have finished AFTER
//     readStart (had W2's write quorum completed before the read
//     began, quorum intersection would have surfaced W2's version to
//     the read), so a cached read served before readStart+lease is
//     stale by strictly less than lease relative to W2's completion.
//   - Writes are write-through before they return: PutCtx/DelCtx call
//     writeThrough with the committed version, so a client that saw
//     its own write complete reads its own write from the cache
//     (read-your-writes within one cluster handle), and the entry a
//     newer write supersedes is replaced before any later-starting
//     read can observe it.
//   - Every update is guarded by the version total order (apply only
//     if the incoming version is not beaten by the resident one), so
//     racing populates and write-throughs resolve exactly like replica
//     divergence does: dominance first, deterministic tiebreak for
//     concurrent histories.
//
// Net guarantee: a cached read is never staler than the configured
// lease, and the chaos checker verifies it with the lease as the
// staleness allowance.
type hotCache struct {
	lease     time.Duration
	threshold int
	window    time.Duration

	shards [cacheShards]cacheShard

	hits       atomic.Int64
	misses     atomic.Int64
	admissions atomic.Int64
	writeThrus atomic.Int64
	expiries   atomic.Int64
	evictions  atomic.Int64
}

// cacheShard is one stripe: an LRU of admitted entries plus the
// admission counters for keys still proving they are hot. counts is
// cleared every window, so a key must sustain threshold reads within
// one window to be admitted — a bounded, self-resetting approximation
// of read rate.
type cacheShard struct {
	mu          sync.Mutex
	cap         int
	entries     map[string]*list.Element
	lru         *list.List // front = most recent
	counts      map[string]int
	windowStart time.Time
}

// cacheEntry is one cached key version. deleted entries are cached
// not-founds (a hot key that was deleted keeps absorbing reads).
type cacheEntry struct {
	key     string
	ver     version.Version
	value   string
	deleted bool
	expires time.Time
}

// supersedes reports whether an update carrying ver may overwrite an
// entry at cur: yes unless cur strictly beats it under the version
// total order. Equal versions refresh (same bytes, fresher lease),
// mirroring the seed's `seq >= entry.seq` guard.
func supersedes(ver, cur version.Version) bool {
	return !version.Newer(cur, ver)
}

// newHotCache sizes the cache. size is the total entry budget across
// shards; threshold is how many observed reads within window admit a
// key.
func newHotCache(size int, lease time.Duration, threshold int, window time.Duration) *hotCache {
	per := size / cacheShards
	if per < 1 {
		per = 1
	}
	h := &hotCache{lease: lease, threshold: threshold, window: window}
	for i := range h.shards {
		h.shards[i] = cacheShard{
			cap:     per,
			entries: make(map[string]*list.Element, per),
			lru:     list.New(),
			counts:  make(map[string]int),
		}
	}
	return h
}

func (h *hotCache) shard(key string) *cacheShard {
	f := fnv.New32a()
	f.Write([]byte(key))
	return &h.shards[f.Sum32()%cacheShards]
}

// lookup serves a read from the cache when the key has a live lease.
// hit=false means the caller must do the quorum read (and should call
// observe with its outcome). Expired entries stay in place — observe
// refreshes them under the seq guard — but count as misses.
func (h *hotCache) lookup(key string) (value string, found, hit bool) {
	if h == nil {
		return "", false, false
	}
	now := time.Now()
	s := h.shard(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		h.misses.Add(1)
		return "", false, false
	}
	e := el.Value.(*cacheEntry)
	if now.After(e.expires) {
		s.mu.Unlock()
		h.expiries.Add(1)
		h.misses.Add(1)
		return "", false, false
	}
	s.lru.MoveToFront(el)
	value, found = e.value, !e.deleted
	s.mu.Unlock()
	h.hits.Add(1)
	return value, found, true
}

// observe feeds one quorum read's outcome to the cache: it counts the
// key toward hot admission and, once admitted (or already resident),
// installs the result with the lease anchored at readStart. found=false
// with a zero version is a quorum-agreed "never existed"; found=false
// with a real version is a tombstone — both cache as not-found.
func (h *hotCache) observe(key string, readStart time.Time, ver version.Version, value string, found bool) {
	if h == nil {
		return
	}
	expires := readStart.Add(h.lease)
	if time.Now().After(expires) {
		return // the read outlived its own lease; nothing worth caching
	}
	s := h.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if supersedes(ver, e.ver) {
			e.ver, e.value, e.deleted, e.expires = ver, value, !found, expires
		}
		s.lru.MoveToFront(el)
		return
	}
	// Not resident: count toward admission within the current window.
	now := time.Now()
	if s.windowStart.IsZero() || now.Sub(s.windowStart) > h.window {
		s.counts = make(map[string]int)
		s.windowStart = now
	}
	s.counts[key]++
	if s.counts[key] < h.threshold {
		return
	}
	delete(s.counts, key)
	for s.lru.Len() >= s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
		h.evictions.Add(1)
	}
	s.entries[key] = s.lru.PushFront(&cacheEntry{
		key: key, ver: ver, value: value, deleted: !found, expires: expires,
	})
	h.admissions.Add(1)
}

// writeThrough lands a committed write on the cache before PutCtx or
// DelCtx returns: resident entries are updated in place (same version
// guard as observe) with a fresh lease from now — the value IS the
// newest committed version at this instant, and any write that
// supersedes it will run its own writeThrough before returning.
// Non-resident keys are left alone: write traffic must not flush the
// read-hot working set.
func (h *hotCache) writeThrough(key string, ver version.Version, value string, deleted bool) {
	if h == nil {
		return
	}
	s := h.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if supersedes(ver, e.ver) {
			e.ver, e.value, e.deleted, e.expires = ver, value, deleted, time.Now().Add(h.lease)
		}
	}
	s.mu.Unlock()
	h.writeThrus.Add(1)
}

// Hits reports cache hits (reads served without a quorum fan-out).
func (h *hotCache) Hits() int64 {
	if h == nil {
		return 0
	}
	return h.hits.Load()
}

// Misses reports lookups that fell through to a quorum read.
func (h *hotCache) Misses() int64 {
	if h == nil {
		return 0
	}
	return h.misses.Load()
}
