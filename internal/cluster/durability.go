package cluster

import (
	"strconv"
	"strings"
	"time"
)

// Hinted handoffs are stored wrapped with their creation time:
// "<unixNanos> h <encoded value>". The "h" marker keeps a raw hint
// from ever being mistaken for a versioned value — decode() rejects it
// loudly — and the timestamp is what the TTL sweep ages against.
// Without a TTL, a permanently dead destination grows the hint~
// keyspace forever: every write that misses it parks another hint that
// nothing will ever consume.
func hintEncode(raw string) string {
	return strconv.FormatInt(time.Now().UnixNano(), 10) + " h " + raw
}

// hintParse splits a stored hint back into its birth time and payload.
func hintParse(stored string) (born time.Time, raw string, ok bool) {
	parts := strings.SplitN(stored, " ", 3)
	if len(parts) != 3 || parts[1] != "h" {
		return time.Time{}, "", false
	}
	nanos, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return time.Time{}, "", false
	}
	return time.Unix(0, nanos), parts[2], true
}

// hintExpired reports whether a hint born at the given time has
// outlived the configured TTL (negative TTL = never).
func (c *Cluster) hintExpired(born time.Time) bool {
	return c.cfg.HintTTL > 0 && time.Since(born) >= c.cfg.HintTTL
}

// HintsExpired reports how many parked hints the TTL sweep (or an
// expiry check during replay) has dropped.
func (c *Cluster) HintsExpired() int64 { return c.hintsExpired.Load() }

// sweepExpiredHints walks every live node's parked hints and deletes
// the ones older than HintTTL, whatever their destination — including
// hints for nodes that are down or long dead, which the replay path
// (it only runs when a destination comes back) would never visit.
// Dropping an expired hint abandons that hint's contribution to a past
// sloppy quorum; the TTL is the explicit bound on how long the cluster
// keeps paying memory for that promise.
func (c *Cluster) sweepExpiredHints() {
	if c.cfg.HintTTL <= 0 {
		return
	}
	ctx := c.ctx
	c.topoMu.RLock()
	holders := make([]*node, 0, len(c.order))
	for _, name := range c.order {
		holders = append(holders, c.nodes[name])
	}
	c.topoMu.RUnlock()

	expired := 0
	for _, holder := range holders {
		if ctx.Err() != nil {
			break
		}
		if holder.down.Load() || holder.killed.Load() {
			continue
		}
		keys, err := holder.client().KeysCtx(ctx)
		if err != nil {
			continue
		}
		hintKeys := keys[:0]
		for _, hk := range keys {
			if strings.HasPrefix(hk, hintMark) {
				hintKeys = append(hintKeys, hk)
			}
		}
		if len(hintKeys) == 0 {
			continue
		}
		vals, found, err := holder.client().MGetCtx(ctx, hintKeys...)
		if err != nil {
			continue
		}
		var dead []string
		for i, hk := range hintKeys {
			if !found[i] {
				continue
			}
			born, _, ok := hintParse(vals[i])
			if !ok {
				// Unparseable hint: it can never replay (applyHint would
				// reject it too), so age it out with the rest.
				dead = append(dead, hk)
				continue
			}
			if c.hintExpired(born) {
				dead = append(dead, hk)
			}
		}
		if len(dead) == 0 {
			continue
		}
		if _, err := holder.client().MDelCtx(ctx, dead...); err == nil {
			expired += len(dead)
		}
	}
	if expired > 0 {
		c.hintsExpired.Add(int64(expired))
	}
}
