package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/version"
)

// vclock builds a totally ordered test version: n writes by one
// coordinator, so vclock(a) dominates vclock(b) exactly when a > b —
// the same shape the old integer sequence guard was tested with.
// vclock(0) is the zero version ("never existed").
func vclock(n uint64) version.Version {
	if n == 0 {
		return version.Version{}
	}
	return version.Version{VV: version.Vector{"n0": n}, Clock: int64(n)}
}

// admitKey drives key through the admission threshold so later observe
// calls hit the resident-entry path. Uses a generous lease anchor (now)
// so nothing expires mid-setup.
func admitKey(h *hotCache, key string, seq uint64, value string) {
	for i := 0; i < h.threshold; i++ {
		h.observe(key, time.Now(), vclock(seq), value, true)
	}
}

func TestHotCache_AdmissionThreshold(t *testing.T) {
	h := newHotCache(64, time.Minute, 3, time.Minute)

	// Below threshold: no residency, lookups miss.
	h.observe("k", time.Now(), vclock(1), "v", true)
	h.observe("k", time.Now(), vclock(1), "v", true)
	if _, _, hit := h.lookup("k"); hit {
		t.Fatal("key resident after 2 observes with threshold 3")
	}
	// Third observe within the window admits.
	h.observe("k", time.Now(), vclock(1), "v", true)
	v, ok, hit := h.lookup("k")
	if !hit || !ok || v != "v" {
		t.Fatalf("lookup after admission = (%q, %v, %v), want (v, true, true)", v, ok, hit)
	}
	if h.admissions.Load() != 1 {
		t.Errorf("admissions = %d, want 1", h.admissions.Load())
	}
	if h.Hits() != 1 {
		t.Errorf("hits = %d, want 1", h.Hits())
	}
}

func TestHotCache_LeaseExpiry(t *testing.T) {
	h := newHotCache(64, 20*time.Millisecond, 1, time.Minute)
	start := time.Now()
	h.observe("k", start, vclock(1), "v", true)
	if _, _, hit := h.lookup("k"); !hit {
		t.Fatal("fresh entry did not hit")
	}
	time.Sleep(30 * time.Millisecond)
	if _, _, hit := h.lookup("k"); hit {
		t.Fatal("entry served past its lease")
	}
	if h.expiries.Load() == 0 {
		t.Error("expiry not counted")
	}

	// An observe whose read started longer than a lease ago installs
	// nothing: the result is already too old to serve.
	h2 := newHotCache(64, 20*time.Millisecond, 1, time.Minute)
	h2.observe("stale", time.Now().Add(-time.Second), vclock(1), "v", true)
	if _, _, hit := h2.lookup("stale"); hit {
		t.Fatal("observe installed an already-expired result")
	}
}

func TestHotCache_SeqGuard(t *testing.T) {
	h := newHotCache(64, time.Minute, 1, time.Minute)
	admitKey(h, "k", 5, "v5")

	// A straggler quorum read carrying an older seq must not regress the
	// entry (it raced with a newer write-through or populate).
	h.observe("k", time.Now(), vclock(3), "v3", true)
	if v, _, hit := h.lookup("k"); !hit || v != "v5" {
		t.Fatalf("old-seq observe regressed entry: got %q, want v5", v)
	}
	// Equal or newer seq applies.
	h.observe("k", time.Now(), vclock(7), "v7", true)
	if v, _, hit := h.lookup("k"); !hit || v != "v7" {
		t.Fatalf("new-seq observe not applied: got %q, want v7", v)
	}

	// Same guard on the write-through path.
	h.writeThrough("k", vclock(6), "v6", false)
	if v, _, _ := h.lookup("k"); v != "v7" {
		t.Fatalf("old-seq writeThrough regressed entry: got %q, want v7", v)
	}
	h.writeThrough("k", vclock(9), "v9", false)
	if v, _, _ := h.lookup("k"); v != "v9" {
		t.Fatalf("writeThrough not applied: got %q, want v9", v)
	}
}

func TestHotCache_WriteThroughResidentOnly(t *testing.T) {
	h := newHotCache(64, time.Minute, 3, time.Minute)
	// Write traffic to a cold key must not admit it: a write-heavy
	// stream would otherwise flush the read-hot working set.
	h.writeThrough("cold", vclock(1), "v", false)
	if _, _, hit := h.lookup("cold"); hit {
		t.Fatal("writeThrough admitted a non-resident key")
	}

	admitKey(h, "hot", 1, "v1")
	h.writeThrough("hot", vclock(2), "v2", false)
	if v, ok, hit := h.lookup("hot"); !hit || !ok || v != "v2" {
		t.Fatalf("resident write-through = (%q, %v, %v), want (v2, true, true)", v, ok, hit)
	}
}

func TestHotCache_DeleteCachesTombstone(t *testing.T) {
	h := newHotCache(64, time.Minute, 1, time.Minute)
	admitKey(h, "k", 1, "v")
	h.writeThrough("k", vclock(2), "", true)
	v, ok, hit := h.lookup("k")
	if !hit {
		t.Fatal("deleted hot key fell out of the cache; tombstone should keep absorbing reads")
	}
	if ok || v != "" {
		t.Fatalf("deleted key read = (%q, %v), want not-found", v, ok)
	}

	// Quorum-agreed "never existed" (seq 0) also caches as not-found.
	h.observe("ghost", time.Now(), vclock(0), "", false)
	if _, ok, hit := h.lookup("ghost"); !hit || ok {
		t.Fatalf("never-existed key = (ok=%v, hit=%v), want cached not-found", ok, hit)
	}
}

func TestHotCache_LRUEviction(t *testing.T) {
	// One entry per shard: admitting a second key in a shard must evict
	// the least-recently-used one.
	h := newHotCache(cacheShards, time.Minute, 1, time.Minute)
	s := &h.shards[0]
	if s.cap != 1 {
		t.Fatalf("per-shard cap = %d, want 1", s.cap)
	}
	// Find two keys landing in the same shard.
	var a, b string
	for i := 0; ; i++ {
		k := fmt.Sprintf("evict%d", i)
		if h.shard(k) != s {
			continue
		}
		if a == "" {
			a = k
		} else {
			b = k
			break
		}
	}
	h.observe(a, time.Now(), vclock(1), "va", true)
	h.observe(b, time.Now(), vclock(1), "vb", true)
	if _, _, hit := h.lookup(a); hit {
		t.Fatal("LRU entry survived eviction")
	}
	if _, _, hit := h.lookup(b); !hit {
		t.Fatal("newly admitted entry missing")
	}
	if h.evictions.Load() != 1 {
		t.Errorf("evictions = %d, want 1", h.evictions.Load())
	}
}

func TestHotCache_AdmissionWindowResets(t *testing.T) {
	h := newHotCache(64, time.Minute, 2, 10*time.Millisecond)
	h.observe("k", time.Now(), vclock(1), "v", true)
	time.Sleep(20 * time.Millisecond)
	// Window rolled: the earlier count is gone, so this is 1-of-2 again.
	h.observe("k", time.Now(), vclock(1), "v", true)
	if _, _, hit := h.lookup("k"); hit {
		t.Fatal("key admitted across window reset; counts must not accumulate forever")
	}
	h.observe("k", time.Now(), vclock(1), "v", true)
	if _, _, hit := h.lookup("k"); !hit {
		t.Fatal("key not admitted after threshold reads within one window")
	}
}

func TestHotCache_NilSafe(t *testing.T) {
	var h *hotCache
	if _, _, hit := h.lookup("k"); hit {
		t.Fatal("nil cache hit")
	}
	h.observe("k", time.Now(), vclock(1), "v", true)
	h.writeThrough("k", vclock(1), "v", false)
	if h.Hits() != 0 || h.Misses() != 0 {
		t.Fatal("nil cache counters non-zero")
	}
}

// TestCluster_CacheEndToEnd exercises the wired path: hot reads served
// from cache (gets counted, quorum skipped), read-your-writes via
// write-through, and cached not-found after delete.
func TestCluster_CacheEndToEnd(t *testing.T) {
	c, err := New(Config{
		Nodes: 3, Replicas: 3, WriteQuorum: 2, ReadQuorum: 2,
		HotKeyCache: true, CacheLease: time.Second, CacheHotThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("hot", "v1"); err != nil {
		t.Fatal(err)
	}
	// Drive past the admission threshold, then verify hits accrue.
	for i := 0; i < 3; i++ {
		if v, ok, err := c.Get("hot"); err != nil || !ok || v != "v1" {
			t.Fatalf("get %d = (%q, %v, %v)", i, v, ok, err)
		}
	}
	if c.CacheHits() == 0 {
		t.Fatal("no cache hits after repeated reads of one key")
	}

	// Read-your-writes: the write-through must land before Put returns.
	if err := c.Put("hot", "v2"); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get("hot"); !ok || v != "v2" {
		t.Fatalf("read after write = (%q, %v), want v2", v, ok)
	}

	if err := c.Del("hot"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("hot"); err != nil || ok {
		t.Fatalf("read after delete: ok=%v err=%v, want not-found", ok, err)
	}

	if got, ok := c.Counters().Get("cache.hits"); !ok || got == 0 {
		t.Error("cache.hits counter missing from Counters()")
	}
}
