package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sockets"
	"repro/internal/version"
)

// testConfig returns fast-timeout settings so failure paths run in
// milliseconds, not the production defaults.
func testConfig(nodes int) Config {
	return Config{
		Nodes:             nodes,
		VNodes:            32,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		PoolTimeout:       250 * time.Millisecond,
		PoolAttempts:      2,
		Workers:           4,
	}
}

func startCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterPutGetAcrossNodes(t *testing.T) {
	c := startCluster(t, testConfig(3))
	const keys = 150
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		v, ok, err := c.Get(fmt.Sprintf("key-%d", i))
		if err != nil || !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get key-%d = (%q, %v, %v)", i, v, ok, err)
		}
	}
	// Overwrites resolve to the newest version.
	if err := c.Put("key-0", "newer"); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get("key-0"); !ok || v != "newer" {
		t.Errorf("overwrite read back (%q, %v)", v, ok)
	}
	if _, ok, err := c.Get("missing"); ok || err != nil {
		t.Errorf("missing key = (found=%v, %v)", ok, err)
	}
	cs := c.Counters()
	if v, _ := cs.Get("cluster.puts"); v != keys+1 {
		t.Errorf("puts counter = %v", v)
	}
	if v, _ := cs.Get("cluster.quorum-failures"); v != 0 {
		t.Errorf("quorum failures on a healthy cluster: %v", v)
	}
	// Every node took some share of the replicated traffic.
	for _, name := range c.Nodes() {
		n, _ := c.lookup(name)
		if n.server().Stats().Requests == 0 {
			t.Errorf("node %s saw no requests: replication not spreading", name)
		}
	}
}

func TestClusterValuesMayContainSpaces(t *testing.T) {
	c := startCluster(t, testConfig(3))
	want := "a value with  spaces and 123"
	if err := c.Put("k", want); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || v != want {
		t.Fatalf("Get = (%q, %v, %v), want %q", v, ok, err, want)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 2, Replicas: 3}); err == nil {
		t.Error("replicas > nodes must be rejected")
	}
	if _, err := New(Config{Nodes: 3, Replicas: 3, WriteQuorum: 1, ReadQuorum: 1}); err == nil {
		t.Error("W+R <= N must be rejected (no read/write overlap)")
	}
	if _, err := New(Config{Nodes: 3, Replicas: 2, WriteQuorum: 3}); err == nil {
		t.Error("W > replicas must be rejected")
	}
}

func TestClusterReservedKeys(t *testing.T) {
	c := startCluster(t, testConfig(3))
	if err := c.Put("hint~node0~x", "v"); !errors.Is(err, ErrReservedKey) {
		t.Errorf("reserved put error = %v", err)
	}
	if _, _, err := c.Get("hint~node0~x"); !errors.Is(err, ErrReservedKey) {
		t.Errorf("reserved get error = %v", err)
	}
	// The underlying bad-key rules still apply through the pool client.
	if err := c.Put("bad key", "v"); !errors.Is(err, sockets.ErrBadKey) {
		t.Errorf("whitespace key error = %v", err)
	}
}

func TestClusterQuorumReadsWithReplicaDown(t *testing.T) {
	// 4 nodes, 3 replicas, W=R=2: killing any single node leaves every
	// key with at least two live replicas.
	cfg := testConfig(4)
	cfg.Replicas = 3
	c := startCluster(t, cfg)
	const keys = 120
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Kill("node1"); err != nil {
		t.Fatal(err)
	}
	c.Probe() // deterministic detection instead of waiting a heartbeat

	for i := 0; i < keys; i++ {
		v, ok, err := c.Get(fmt.Sprintf("key-%d", i))
		if err != nil || !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get key-%d with node1 dead = (%q, %v, %v)", i, v, ok, err)
		}
	}
	// Writes keep succeeding too; those that would land on node1 leave
	// hinted handoffs instead.
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val2-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cs := c.Counters()
	if v, _ := cs.Get("cluster.quorum-failures"); v != 0 {
		t.Errorf("quorum failures with one replica down: %v", v)
	}
	if v, _ := cs.Get("cluster.hinted-writes"); v == 0 {
		t.Error("no hinted writes despite a dead replica")
	}
	if v, _ := cs.Get("cluster.down-events"); v == 0 {
		t.Error("failure detector never marked node1 down")
	}
}

func TestClusterHintedHandoffReplaysOnRestart(t *testing.T) {
	cfg := testConfig(4)
	cfg.Replicas = 3
	c := startCluster(t, cfg)
	if err := c.Kill("node2"); err != nil {
		t.Fatal(err)
	}
	c.Probe()

	const keys = 80
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if hinted, _ := c.Counters().Get("cluster.hinted-writes"); hinted == 0 {
		t.Fatal("no hints parked while node2 was dead")
	}
	if err := c.Restart("node2"); err != nil {
		t.Fatal(err)
	}
	if replayed, _ := c.Counters().Get("cluster.hints-replayed"); replayed == 0 {
		t.Error("restart replayed no hints")
	}

	// The restarted node's own store (checked directly, not via quorum)
	// must now hold every key it replicates.
	n, err := c.lookup("node2")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sockets.Dial(n.address())
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	checked := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		owned := false
		for _, r := range c.place(key).replicas {
			if r == n {
				owned = true
			}
		}
		if !owned {
			continue
		}
		checked++
		raw, ok, err := direct.Get(key)
		if err != nil || !ok {
			t.Fatalf("restarted node2 missing replicated %s (%v, %v)", key, ok, err)
		}
		if _, v, _, _ := version.Decode(raw); v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("restarted node2 has %s = %q", key, raw)
		}
	}
	if checked == 0 {
		t.Fatal("node2 replicates none of the test keys (vnode spread broken?)")
	}

	// Consumed hints are gone from every node.
	for _, name := range c.Nodes() {
		h, _ := c.lookup(name)
		if h.killed.Load() || h.down.Load() {
			continue
		}
		all, err := h.client().Keys()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range all {
			if strings.HasPrefix(k, hintMark) {
				t.Errorf("leftover hint %q on %s", k, name)
			}
		}
	}
}

func TestClusterJoinMovesOnlyArcKeys(t *testing.T) {
	c := startCluster(t, testConfig(3))
	const keys = 300
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Moves()
	if before != 0 {
		t.Fatalf("moves before any topology change = %d", before)
	}
	if err := c.Join("node3"); err != nil {
		t.Fatal(err)
	}
	moved := c.Moves() - before
	// The new node owns ~1/4 of the ring: ~K/4 primary arcs move. Allow
	// 2x slack but fail if half the keyspace relocated.
	if moved == 0 {
		t.Error("join moved no keys")
	}
	if moved > keys/2 {
		t.Errorf("join moved %d of %d keys, want ~%d (consistent hashing broken)", moved, keys, keys/4)
	}
	if v, _ := c.Counters().Get("cluster.keys-migrated"); v == 0 {
		t.Error("no replica copies migrated over the wire")
	}
	// Every key still reads back through the new topology.
	for i := 0; i < keys; i++ {
		if _, ok, err := c.Get(fmt.Sprintf("key-%d", i)); !ok || err != nil {
			t.Fatalf("key-%d lost after join (%v, %v)", i, ok, err)
		}
	}
	if got := len(c.Nodes()); got != 4 {
		t.Errorf("nodes after join = %d", got)
	}
}

func TestClusterLeaveKeepsData(t *testing.T) {
	cfg := testConfig(4)
	cfg.Replicas = 2
	cfg.WriteQuorum = 2
	cfg.ReadQuorum = 1
	c := startCluster(t, cfg)
	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Leave("node0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		v, ok, err := c.Get(fmt.Sprintf("key-%d", i))
		if err != nil || !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get key-%d after leave = (%q, %v, %v)", i, v, ok, err)
		}
	}
	if got := len(c.Nodes()); got != 3 {
		t.Errorf("nodes after leave = %d", got)
	}
	// Dropping below the replica count is refused.
	cfg2 := testConfig(2)
	cfg2.Replicas = 2
	c2 := startCluster(t, cfg2)
	if err := c2.Leave("node0"); err == nil {
		t.Error("leave below replica count must be rejected")
	}
}

func TestClusterJoinValidation(t *testing.T) {
	c := startCluster(t, testConfig(3))
	if err := c.Join("node0"); err == nil {
		t.Error("duplicate join must fail")
	}
	if err := c.Join("bad name"); err == nil {
		t.Error("whitespace node name must fail")
	}
	if err := c.Join("bad~name"); err == nil {
		t.Error("'~' in node name must fail")
	}
}

func TestClusterReportListsNodesAndCounters(t *testing.T) {
	c := startCluster(t, testConfig(3))
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	for _, want := range []string{"node0", "node1", "node2", "cluster.puts", "cluster.hinted-writes", "p50"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if err := c.Kill("node1"); err != nil {
		t.Fatal(err)
	}
	if rep := c.Report(); !strings.Contains(rep, "dead") {
		t.Errorf("report does not flag the killed node:\n%s", rep)
	}
}

func TestClusterClosedOps(t *testing.T) {
	c, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	if err := c.Put("k", "v"); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close = %v", err)
	}
	if _, _, err := c.Get("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close = %v", err)
	}
	if err := c.Join("late"); !errors.Is(err, ErrClosed) {
		t.Errorf("Join after close = %v", err)
	}
}

// TestClusterBinaryProto runs the topology lifecycle — replicated
// writes, a dead replica parking hints, restart replaying them (a
// batched MGET sweep), and a join migrating arcs (batched MPUTs) —
// with every inter-node pool speaking the binary protocol. Servers
// negotiate per connection, so heartbeat probes (still text) coexist
// with the binary request pools on the same listeners.
func TestClusterBinaryProto(t *testing.T) {
	cfg := testConfig(4)
	cfg.Replicas = 3
	cfg.Proto = sockets.ProtoBinary
	c := startCluster(t, cfg)

	const keys = 120
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Kill("node2"); err != nil {
		t.Fatal(err)
	}
	c.Probe()
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("v2-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if hinted, _ := c.Counters().Get("cluster.hinted-writes"); hinted == 0 {
		t.Fatal("no hints parked while node2 was dead")
	}
	if err := c.Restart("node2"); err != nil {
		t.Fatal(err)
	}
	if replayed, _ := c.Counters().Get("cluster.hints-replayed"); replayed == 0 {
		t.Error("restart replayed no hints over the binary protocol")
	}

	if err := c.Join("node4"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Counters().Get("cluster.keys-migrated"); v == 0 {
		t.Error("no replica copies migrated over the binary protocol")
	}
	for i := 0; i < keys; i++ {
		v, ok, err := c.Get(fmt.Sprintf("key-%d", i))
		if err != nil || !ok || v != fmt.Sprintf("v2-%d", i) {
			t.Fatalf("Get key-%d after lifecycle = (%q, %v, %v)", i, v, ok, err)
		}
	}
}
