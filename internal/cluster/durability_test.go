package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// durableConfig is testConfig plus per-node WALs and a fast hint TTL
// left at the default (tests that need expiry override it).
func durableConfig(nodes int) Config {
	cfg := testConfig(nodes)
	cfg.Durable = true
	return cfg
}

// TestClusterDurableRestart_NoHintReplayForAckedData is the
// acceptance-criteria check at the cluster level: a durable node killed
// (kill -9 semantics) and restarted recovers every write it acked from
// its own WAL — the EventRestart payload reports the count — and hint
// replay contributes nothing, because nothing was written while it was
// down.
func TestClusterDurableRestart_NoHintReplayForAckedData(t *testing.T) {
	var events []Event
	var evMu sync.Mutex
	cfg := durableConfig(3)
	cfg.EventTap = func(e Event) {
		evMu.Lock()
		events = append(events, e)
		evMu.Unlock()
	}
	c := startCluster(t, cfg)

	const keys = 80
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%03d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := c.Kill("node1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart("node1"); err != nil {
		t.Fatal(err)
	}

	n, err := c.lookup("node1")
	if err != nil {
		t.Fatal(err)
	}
	recovered := n.server().RecoveredKeys()
	if recovered == 0 {
		t.Fatal("durable node came back empty: WAL recovery did not run")
	}
	evMu.Lock()
	var restartDetail string
	for _, e := range events {
		if e.Type == EventRestart && e.Node == "node1" {
			restartDetail = e.Detail
		}
	}
	evMu.Unlock()
	if want := fmt.Sprintf("recovered %d keys", recovered); restartDetail != want {
		t.Fatalf("EventRestart detail = %q, want %q", restartDetail, want)
	}
	if got := c.hintsReplayed.Load(); got != 0 {
		t.Fatalf("hints replayed = %d for pre-crash acked data; WAL recovery should have made replay unnecessary", got)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v, found, err := c.Get(k)
		if err != nil || !found || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q, %v, %v after durable restart", k, v, found, err)
		}
	}
}

// TestClusterDurableRestart_HintsTopUpSuffix: writes that land while a
// durable node is dead arrive as hints; after Restart the node holds
// its WAL-recovered prefix AND the hinted suffix.
func TestClusterDurableRestart_HintsTopUpSuffix(t *testing.T) {
	c := startCluster(t, durableConfig(3))

	for i := 0; i < 40; i++ {
		if err := c.Put(fmt.Sprintf("pre-%03d", i), "old"); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := c.Kill("node2"); err != nil {
		t.Fatal(err)
	}
	c.Probe() // mark it down so the suffix writes hint instead of timing out
	for i := 0; i < 20; i++ {
		if err := c.Put(fmt.Sprintf("post-%03d", i), "new"); err != nil {
			t.Fatalf("Put while node down: %v", err)
		}
	}
	if err := c.Restart("node2"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 40; i++ {
		if v, found, err := c.Get(fmt.Sprintf("pre-%03d", i)); err != nil || !found || v != "old" {
			t.Fatalf("pre-crash key lost: %q, %v, %v", v, found, err)
		}
	}
	for i := 0; i < 20; i++ {
		if v, found, err := c.Get(fmt.Sprintf("post-%03d", i)); err != nil || !found || v != "new" {
			t.Fatalf("while-down key lost: %q, %v, %v", v, found, err)
		}
	}
}

// TestHintTTL_ExpiresParkedHints: hints for a destination that never
// comes back are swept once they outlive HintTTL — the hint~ keyspace
// stops growing without bound — and the drops are counted.
func TestHintTTL_ExpiresParkedHints(t *testing.T) {
	cfg := testConfig(4) // a 4th node gives hints a fallback to park on
	cfg.Replicas = 3
	cfg.HintTTL = 250 * time.Millisecond
	c := startCluster(t, cfg)

	if err := c.Kill("node2"); err != nil {
		t.Fatal(err)
	}
	c.Probe() // mark it down: writes to its arcs start hinting
	const keys = 30
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%03d", i), "v"); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if c.hintedWrites.Load() == 0 {
		t.Fatal("no hinted writes parked; test premise broken")
	}

	// Wait out the TTL plus a couple of sweep intervals (TTL/4 each,
	// floored at the heartbeat interval).
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.HintsExpired() > 0 && countParkedHints(t, c) == 0 {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got := c.HintsExpired(); got == 0 {
		t.Fatal("hints.expired stayed 0: TTL sweep never dropped the parked hints")
	}
	if got := countParkedHints(t, c); got != 0 {
		t.Fatalf("%d hint~ keys still parked after TTL expiry", got)
	}
	// The counter surfaces through the report under the satellite's
	// required name.
	if v, ok := c.Counters().Get("hints.expired"); !ok || v == 0 {
		t.Fatal(`Counters()["hints.expired"] missing or 0 after expiries`)
	}
}

// countParkedHints sums hint~ keys across live nodes.
func countParkedHints(t *testing.T, c *Cluster) int {
	t.Helper()
	c.topoMu.RLock()
	nodes := make([]*node, 0, len(c.order))
	for _, name := range c.order {
		nodes = append(nodes, c.nodes[name])
	}
	c.topoMu.RUnlock()
	total := 0
	for _, n := range nodes {
		if n.killed.Load() {
			continue
		}
		keys, err := n.client().Keys()
		if err != nil {
			continue
		}
		for _, k := range keys {
			if strings.HasPrefix(k, hintMark) {
				total++
			}
		}
	}
	return total
}

// TestHintTTL_DisabledKeepsHints: a negative TTL turns expiry off —
// the pre-TTL behavior is still reachable for experiments.
func TestHintTTL_DisabledKeepsHints(t *testing.T) {
	cfg := testConfig(4)
	cfg.Replicas = 3
	cfg.HintTTL = -1
	c := startCluster(t, cfg)

	if err := c.Kill("node2"); err != nil {
		t.Fatal(err)
	}
	c.Probe()
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("key-%03d", i), "v"); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if c.hintedWrites.Load() == 0 {
		t.Fatal("no hinted writes parked; test premise broken")
	}
	time.Sleep(150 * time.Millisecond) // several heartbeat intervals
	if got := c.HintsExpired(); got != 0 {
		t.Fatalf("hints expired with TTL disabled: %d", got)
	}
	if got := countParkedHints(t, c); got == 0 {
		t.Fatal("parked hints vanished with TTL disabled")
	}
}
