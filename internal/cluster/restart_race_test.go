package cluster

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRestartDiscardsStaleProbe is the regression test for the Restart/
// heartbeat race: a probe already in flight against a node when it is
// killed and restarted must not apply its (stale) verdict to the fresh
// incarnation. The first incarnation of node1 stalls PING so the probe
// is reliably mid-flight when Kill bumps the epoch; the kill then cuts
// the probe's connection, its failure verdict arrives between Kill and
// the restarted node's first clean probe, and without the epoch guard
// it marked the recovered node spuriously down.
func TestRestartDiscardsStaleProbe(t *testing.T) {
	cfg := testConfig(3)
	cfg.HeartbeatInterval = 10 * time.Second // only explicit probes in this test
	cfg.HeartbeatTimeout = 2 * time.Second   // the stall must not time the probe out
	cfg.DrainTimeout = 10 * time.Millisecond // Kill cuts the stalled PING fast
	var incarnation atomic.Int32
	cfg.ServerPreHandle = func(name string) func(req string) {
		if name != "node1" || incarnation.Add(1) > 1 {
			return nil // only node1's first incarnation stalls
		}
		return func(req string) {
			if req == "PING" {
				time.Sleep(500 * time.Millisecond)
			}
		}
	}
	c := startCluster(t, cfg)
	n, err := c.lookup("node1")
	if err != nil {
		t.Fatal(err)
	}

	probeDone := make(chan bool, 1)
	go func() { probeDone <- c.probeNode(n) }()
	time.Sleep(50 * time.Millisecond) // the probe is now blocked in the stalled PING

	// Kill bumps the epoch before cutting connections, so the stale
	// probe is deterministically invalidated before its read wakes.
	if err := c.Kill("node1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart("node1"); err != nil {
		t.Fatal(err)
	}
	if ok := <-probeDone; ok {
		t.Error("stale probe of the killed incarnation reported success")
	}

	if n.down.Load() {
		t.Error("restarted node marked down by a stale probe of its previous incarnation")
	}
	if v, _ := c.Counters().Get("cluster.down-events"); v != 0 {
		t.Errorf("down-events = %v: the stale probe's verdict was applied", v)
	}
	// The fresh incarnation serves quorum traffic immediately.
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || v != "v" {
		t.Fatalf("post-restart quorum read = (%q, %v, %v)", v, ok, err)
	}
}

// TestClusterDelTombstones: Del writes a quorum tombstone that wins by
// last-write-wins — the key reads back as missing everywhere, a newer
// Put resurrects it, and deleting a missing key is not an error.
func TestClusterDelTombstones(t *testing.T) {
	c := startCluster(t, testConfig(3))
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := c.Del("k"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k"); err != nil || ok {
		t.Fatalf("Get after Del = (%q, %v, %v), want not found", v, ok, err)
	}
	if err := c.Del("never-written"); err != nil {
		t.Errorf("Del of a missing key = %v", err)
	}
	if err := c.Put("k", "v2"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || v != "v2" {
		t.Fatalf("Get after re-Put = (%q, %v, %v)", v, ok, err)
	}
	if v, _ := c.Counters().Get("cluster.dels"); v != 2 {
		t.Errorf("cluster.dels = %v, want 2", v)
	}
}

// TestClusterDelSurvivesReplicaOutage: a delete issued while one
// replica is dead must not resurrect when that replica recovers with
// its stale pre-delete copy — the tombstone's higher sequence wins the
// quorum read, and hint replay carries the tombstone onto the
// recovered node.
func TestClusterDelSurvivesReplicaOutage(t *testing.T) {
	cfg := testConfig(4)
	cfg.Replicas = 3
	c := startCluster(t, cfg)
	const keys = 40
	for i := 0; i < keys; i++ {
		if err := c.Put(key(i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Kill("node1"); err != nil {
		t.Fatal(err)
	}
	c.Probe()
	for i := 0; i < keys; i++ {
		if err := c.Del(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Restart("node1"); err != nil {
		t.Fatal(err)
	}
	// node1 is back; if a key it replicates had survived there as a live
	// value newer than the replayed tombstone, this read would resurrect
	// it. (node1 restarts empty in our process model, but the hint
	// replay path must still deliver tombstones — this asserts the
	// end-to-end outcome either way.)
	for i := 0; i < keys; i++ {
		if v, ok, err := c.Get(key(i)); err != nil || ok {
			t.Fatalf("key %d resurrected after outage delete = (%q, %v, %v)", i, v, ok, err)
		}
	}
}

func key(i int) string { return "key-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i/26)) }

// TestClusterEventTap: lifecycle transitions stream through the tap
// with timestamps, in a plausible order.
func TestClusterEventTap(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	cfg := testConfig(4)
	cfg.Replicas = 3
	cfg.EventTap = func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	c := startCluster(t, cfg)
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill("node2"); err != nil {
		t.Fatal(err)
	}
	c.Probe()
	if err := c.Put("k", "v2"); err != nil { // parks a hint for node2
		t.Fatal(err)
	}
	if err := c.Restart("node2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Join("node4"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	seen := map[EventType][]Event{}
	for _, e := range events {
		if e.Time.IsZero() {
			t.Errorf("event %v has no timestamp", e)
		}
		seen[e.Type] = append(seen[e.Type], e)
	}
	for _, want := range []EventType{EventKill, EventDown, EventRestart, EventJoin} {
		if len(seen[want]) == 0 {
			t.Errorf("no %q event in stream %v", want, events)
		}
	}
	if es := seen[EventKill]; len(es) > 0 && es[0].Node != "node2" {
		t.Errorf("kill event names %q, want node2", es[0].Node)
	}
	if es := seen[EventJoin]; len(es) > 0 && !strings.Contains(es[0].Detail, "keys moved") {
		t.Errorf("join event detail = %q", es[0].Detail)
	}
}
