package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/merkle"
	"repro/internal/sockets"
	"repro/internal/sockets/wire"
)

// TestSyncWAL_StreamingRereplication is the disk-loss recovery path:
// a durable node is killed, its log directory wiped, and it restarts
// empty. With the divergence threshold set low, the next anti-entropy
// pass must re-replicate it by streaming a peer's WAL — not key-by-key
// span repair — and the rebuilt replica must be byte-identical to its
// peers, Merkle-certified, including tombstones.
func TestSyncWAL_StreamingRereplication(t *testing.T) {
	c, err := New(Config{
		Nodes: 3, Replicas: 3, WriteQuorum: 3, ReadQuorum: 1,
		Durable: true, Proto: sockets.ProtoBinary, DisableHints: true,
		WALSegmentBytes:     4096, // several sealed segments, so the dump walks a real chain
		SyncStreamThreshold: 0.01,
		DrainTimeout:        50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 300
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d-%s", i, strings.Repeat("x", 40))); err != nil {
			t.Fatal(err)
		}
	}
	// A slice of deletes: tombstones must survive the stream too, or the
	// wiped node would resurrect them on its next quorum read.
	for i := 0; i < keys; i += 10 {
		if err := c.Del(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	if err := c.Kill("node2"); err != nil {
		t.Fatal(err)
	}
	if err := c.WipeWAL("node2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart("node2"); err != nil {
		t.Fatal(err)
	}
	n2, _ := c.lookup("node2")
	if got, err := n2.client().Count(); err != nil || got != 0 {
		t.Fatalf("wiped node holds %d keys (err %v), want 0 before sync", got, err)
	}

	syncUntilQuiet(t, c, 6)

	if c.AntiEntropyStreams() == 0 {
		t.Fatal("antientropy.streams = 0: near-total divergence did not take the WAL-streaming path")
	}
	if c.AntiEntropyStreamBytes() == 0 {
		t.Error("antientropy.stream-bytes not accounted")
	}

	// Byte-identical per the Merkle digest: the rebuilt node's full-tree
	// root must match a healthy peer's.
	n0, _ := c.lookup("node0")
	full := []wire.Span{{Lo: 0, Hi: merkle.Buckets}}
	root0, err := n0.client().TreeCtx(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	root2, err := n2.client().TreeCtx(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	if len(root0) != 1 || len(root2) != 1 || root0[0] != root2[0] {
		t.Fatalf("merkle roots diverge after streaming re-replication: %v vs %v", root0, root2)
	}
	// And the data is actually right, not just self-consistent.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, ok, err := c.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if ok {
				t.Fatalf("%s: deleted key resurrected as %q", key, v)
			}
			continue
		}
		if !ok || !strings.HasPrefix(v, fmt.Sprintf("val-%d-", i)) {
			t.Fatalf("%s = (%q, %v) after re-replication", key, v, ok)
		}
	}
}

// TestSyncWAL_StreamingRequiresOptIn checks the gates: light divergence
// (below threshold), a disabled threshold, or a text-protocol cluster
// must all stay on the Merkle span-repair path.
func TestSyncWAL_StreamingRequiresOptIn(t *testing.T) {
	c, err := New(Config{
		Nodes: 3, Replicas: 3, WriteQuorum: 3, ReadQuorum: 1,
		Durable: true, Proto: sockets.ProtoBinary, DisableHints: true,
		SyncStreamThreshold: -1, // explicitly disabled
		DrainTimeout:        50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 120
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Kill("node1"); err != nil {
		t.Fatal(err)
	}
	if err := c.WipeWAL("node1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart("node1"); err != nil {
		t.Fatal(err)
	}

	syncUntilQuiet(t, c, 6)
	if c.AntiEntropyStreams() != 0 {
		t.Fatalf("antientropy.streams = %d with streaming disabled, want 0", c.AntiEntropyStreams())
	}
	n1, _ := c.lookup("node1")
	if got, err := n1.client().Count(); err != nil || got != keys {
		t.Fatalf("span repair rebuilt %d keys (err %v), want %d", got, err, keys)
	}
}

// TestWipeWAL_Refusals pins the helper's guard rails: memory-only
// clusters have nothing to wipe, and a live node's directory belongs to
// its server.
func TestWipeWAL_Refusals(t *testing.T) {
	mem, err := New(Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if err := mem.WipeWAL("node0"); err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("WipeWAL on memory-only cluster: %v, want not-durable refusal", err)
	}
	if _, err := mem.WALDir("node0"); err == nil {
		t.Fatal("WALDir on memory-only cluster must refuse")
	}

	dur, err := New(Config{Nodes: 3, Durable: true, DrainTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	if err := dur.WipeWAL("node0"); err == nil || !strings.Contains(err.Error(), "live") {
		t.Fatalf("WipeWAL on live node: %v, want refusal", err)
	}
	if err := dur.WipeWAL("nosuch"); err == nil {
		t.Fatal("WipeWAL on unknown node must refuse")
	}
}

// verbServed sums one verb's server-side request count across every
// node — the ground truth for read-amplification accounting, immune to
// client-side retry noise.
func verbServed(c *Cluster, verb string) int64 {
	c.topoMu.RLock()
	nodes := make([]*node, 0, len(c.order))
	for _, name := range c.order {
		nodes = append(nodes, c.nodes[name])
	}
	c.topoMu.RUnlock()
	var total int64
	for _, n := range nodes {
		if h := n.server().VerbLatency(verb); h != nil {
			total += h.Count()
		}
	}
	return total
}

// TestMigrationBatching_ReadAmplification pins the migration copy
// phase's read pattern: sources are read with one bulk MGET per chunk,
// never one GET per (key, source). Before the fix a Join issued
// moves × |sources| GETs; now the GET verb must not be served at all
// during the migration, and the MGET count stays far under one per
// moved key.
func TestMigrationBatching_ReadAmplification(t *testing.T) {
	var mu sync.Mutex
	moved := -1
	c, err := New(Config{
		Nodes: 3, Replicas: 3, WriteQuorum: 3, ReadQuorum: 1,
		Proto: sockets.ProtoBinary, DisableHints: true,
		EventTap: func(e Event) {
			if e.Type == EventJoin {
				mu.Lock()
				fmt.Sscanf(e.Detail, "%d keys moved", &moved) //nolint:errcheck // checked below
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	getsBefore := verbServed(c, "GET")
	mgetsBefore := verbServed(c, "MGET")

	if err := c.Join("node3"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	movedKeys := moved
	mu.Unlock()
	if movedKeys <= 0 {
		t.Fatalf("join moved %d keys, expected a real migration", movedKeys)
	}

	getDelta := verbServed(c, "GET") - getsBefore
	mgetDelta := verbServed(c, "MGET") - mgetsBefore
	if getDelta != 0 {
		t.Errorf("migration served %d per-key GETs, want 0 (reads must batch as MGETs)", getDelta)
	}
	if mgetDelta >= int64(movedKeys) {
		t.Errorf("migration served %d MGETs for %d moved keys — read amplification, want O(sources × chunks)", mgetDelta, movedKeys)
	}

	// The batching must not have changed what migration means: every key
	// still reads back correctly on the new topology.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, ok, err := c.Get(key)
		if err != nil || !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("%s = (%q, %v, %v) after join", key, v, ok, err)
		}
	}
}
