// Package iomodel implements the external-memory (I/O) model from CS41
// Table III: a simulated block device that counts block transfers, files
// with sequential block-buffered readers and writers, and the I/O-
// efficient algorithms the course analyzes — scanning and external
// multiway merge sort — with their transfer counts checked against the
// model's bounds (scan = ⌈n/B⌉; sort ≈ (2n/B)·(1 + ⌈log_{M/B}(n/M)⌉)).
package iomodel

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// Device is a simulated disk that counts block transfers. B is the block
// size in records (the model counts records, not bytes — the constant
// factor is irrelevant to the analysis).
type Device struct {
	B      int
	reads  int64
	writes int64
}

// NewDevice creates a device with block size B records.
func NewDevice(b int) (*Device, error) {
	if b <= 0 {
		return nil, errors.New("iomodel: block size must be positive")
	}
	return &Device{B: b}, nil
}

// Reads returns the number of block reads performed.
func (d *Device) Reads() int64 { return d.reads }

// Writes returns the number of block writes performed.
func (d *Device) Writes() int64 { return d.writes }

// IOs returns total block transfers.
func (d *Device) IOs() int64 { return d.reads + d.writes }

// ResetCounters zeroes the transfer counters.
func (d *Device) ResetCounters() { d.reads, d.writes = 0, 0 }

// File is a sequence of records on the device.
type File struct {
	dev  *Device
	recs []int64
}

// NewFile creates an empty file on the device.
func (d *Device) NewFile() *File { return &File{dev: d} }

// NewFileFrom creates a file holding a copy of xs (loaded for free, as
// the model assumes the input starts on disk).
func (d *Device) NewFileFrom(xs []int64) *File {
	return &File{dev: d, recs: append([]int64(nil), xs...)}
}

// Len returns the number of records in the file.
func (f *File) Len() int { return len(f.recs) }

// Records returns a copy of the file contents without charging I/Os
// (host-side inspection for tests).
func (f *File) Records() []int64 { return append([]int64(nil), f.recs...) }

// Reader streams a file sequentially, charging one block read per B
// records crossed.
type Reader struct {
	f   *File
	pos int
}

// Reader opens a sequential reader at the start of the file.
func (f *File) Reader() *Reader { return &Reader{f: f} }

// Next returns the next record; ok is false at end of file.
func (r *Reader) Next() (v int64, ok bool) {
	if r.pos >= len(r.f.recs) {
		return 0, false
	}
	if r.pos%r.f.dev.B == 0 {
		r.f.dev.reads++
	}
	v = r.f.recs[r.pos]
	r.pos++
	return v, true
}

// Writer appends to a file sequentially, charging one block write per B
// records started. Close flushes nothing extra (the partial block was
// charged when its first record was appended).
type Writer struct {
	f *File
}

// Writer opens an appending writer.
func (f *File) Writer() *Writer { return &Writer{f: f} }

// Append adds one record.
func (w *Writer) Append(v int64) {
	if len(w.f.recs)%w.f.dev.B == 0 {
		w.f.dev.writes++
	}
	w.f.recs = append(w.f.recs, v)
}

// ScanSum reads the whole file once, returning the sum — the canonical
// Θ(n/B) scan.
func ScanSum(f *File) int64 {
	var s int64
	r := f.Reader()
	for v, ok := r.Next(); ok; v, ok = r.Next() {
		s += v
	}
	return s
}

// ScanIOBound returns the scan bound ⌈n/B⌉.
func ScanIOBound(n, b int) int64 {
	return int64((n + b - 1) / b)
}

// SortStats reports an external sort run.
type SortStats struct {
	N           int
	M           int // memory capacity, records
	B           int // block size, records
	Fanout      int // merge arity k
	InitialRuns int
	MergePasses int
	IOs         int64
}

// SortIOBound returns the textbook bound on block transfers for external
// merge sort: 2·⌈n/B⌉ for run formation plus 2·⌈n/B⌉ per merge pass.
func SortIOBound(n, m, b, fanout int) int64 {
	if n == 0 {
		return 0
	}
	nb := int64((n + b - 1) / b)
	runs := (n + m - 1) / m
	passes := 0
	for r := runs; r > 1; r = (r + fanout - 1) / fanout {
		passes++
	}
	return 2 * nb * int64(passes+1)
}

// ExternalMergeSort sorts the input file using at most m records of
// memory: run formation (sort m-record chunks) followed by k-way merge
// passes with k = max(2, m/B - 1), the memory budget that leaves one
// block per input run plus one output block. fanoutOverride, when
// positive, forces a smaller merge arity (for the 2-way vs multiway
// ablation).
func ExternalMergeSort(in *File, m int, fanoutOverride int) (*File, SortStats, error) {
	dev := in.dev
	b := dev.B
	if m < 2*b {
		return nil, SortStats{}, fmt.Errorf("iomodel: memory %d must hold at least two blocks of %d", m, b)
	}
	k := m/b - 1
	if k < 2 {
		k = 2
	}
	if fanoutOverride > 0 {
		if fanoutOverride < 2 {
			return nil, SortStats{}, errors.New("iomodel: fanout must be >= 2")
		}
		if fanoutOverride < k {
			k = fanoutOverride
		}
	}
	st := SortStats{N: in.Len(), M: m, B: b, Fanout: k}

	// Phase 1: run formation.
	var runs []*File
	r := in.Reader()
	buf := make([]int64, 0, m)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		run := dev.NewFile()
		w := run.Writer()
		for _, v := range buf {
			w.Append(v)
		}
		runs = append(runs, run)
		buf = buf[:0]
	}
	for v, ok := r.Next(); ok; v, ok = r.Next() {
		buf = append(buf, v)
		if len(buf) == m {
			flush()
		}
	}
	flush()
	st.InitialRuns = len(runs)
	if len(runs) == 0 {
		out := dev.NewFile()
		st.IOs = dev.IOs()
		return out, st, nil
	}

	// Phase 2: k-way merge passes.
	for len(runs) > 1 {
		st.MergePasses++
		var next []*File
		for lo := 0; lo < len(runs); lo += k {
			hi := lo + k
			if hi > len(runs) {
				hi = len(runs)
			}
			merged, err := mergeRuns(dev, runs[lo:hi])
			if err != nil {
				return nil, st, err
			}
			next = append(next, merged)
		}
		runs = next
	}
	st.IOs = dev.IOs()
	return runs[0], st, nil
}

type heapItem struct {
	v   int64
	src int
}

type mergeHeap []heapItem

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].v < h[j].v }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func mergeRuns(dev *Device, runs []*File) (*File, error) {
	out := dev.NewFile()
	w := out.Writer()
	readers := make([]*Reader, len(runs))
	h := make(mergeHeap, 0, len(runs))
	for i, run := range runs {
		readers[i] = run.Reader()
		if v, ok := readers[i].Next(); ok {
			h = append(h, heapItem{v: v, src: i})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(heapItem)
		w.Append(it.v)
		if v, ok := readers[it.src].Next(); ok {
			heap.Push(&h, heapItem{v: v, src: it.src})
		}
	}
	return out, nil
}

// IsSorted reports whether the file is nondecreasing (free host check).
func (f *File) IsSorted() bool {
	for i := 1; i < len(f.recs); i++ {
		if f.recs[i-1] > f.recs[i] {
			return false
		}
	}
	return true
}
