package iomodel

import (
	"sort"
	"testing"
	"testing/quick"
)

func xorshift(seed uint64) func() uint64 {
	s := seed
	if s == 0 {
		s = 1
	}
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}

func randomRecords(n int, seed uint64) []int64 {
	rnd := xorshift(seed)
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rnd() % 100000)
	}
	return xs
}

func TestDeviceValidation(t *testing.T) {
	if _, err := NewDevice(0); err == nil {
		t.Error("B=0 should error")
	}
	if _, err := NewDevice(-1); err == nil {
		t.Error("B<0 should error")
	}
}

func TestScanCountsBlocks(t *testing.T) {
	dev, _ := NewDevice(8)
	f := dev.NewFileFrom(randomRecords(100, 1))
	sum := ScanSum(f)
	var want int64
	for _, v := range f.Records() {
		want += v
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	// 100 records / 8 per block = 13 block reads.
	if dev.Reads() != ScanIOBound(100, 8) || dev.Reads() != 13 {
		t.Errorf("reads = %d, want 13", dev.Reads())
	}
	if dev.Writes() != 0 {
		t.Errorf("scan should not write: %d", dev.Writes())
	}
}

func TestWriterChargesPerBlock(t *testing.T) {
	dev, _ := NewDevice(4)
	f := dev.NewFile()
	w := f.Writer()
	for i := 0; i < 9; i++ {
		w.Append(int64(i))
	}
	if dev.Writes() != 3 { // blocks of 4, 4, 1
		t.Errorf("writes = %d, want 3", dev.Writes())
	}
	if f.Len() != 9 {
		t.Errorf("len = %d", f.Len())
	}
}

func TestExternalSortCorrectness(t *testing.T) {
	dev, _ := NewDevice(16)
	xs := randomRecords(10000, 7)
	in := dev.NewFileFrom(xs)
	out, st, err := ExternalMergeSort(in, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsSorted() {
		t.Fatal("output not sorted")
	}
	if out.Len() != len(xs) {
		t.Fatalf("lost records: %d != %d", out.Len(), len(xs))
	}
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := out.Records()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %d, want %d", i, got[i], want[i])
		}
	}
	if st.InitialRuns != (10000+255)/256 {
		t.Errorf("initial runs = %d", st.InitialRuns)
	}
	if st.Fanout != 256/16-1 {
		t.Errorf("fanout = %d, want %d", st.Fanout, 256/16-1)
	}
}

func TestExternalSortPropertyMultisetPreserved(t *testing.T) {
	f := func(raw []int16, mExp uint8) bool {
		xs := make([]int64, len(raw))
		counts := map[int64]int{}
		for i, r := range raw {
			xs[i] = int64(r)
			counts[int64(r)]++
		}
		dev, _ := NewDevice(4)
		m := 8 + int(mExp%5)*8
		out, _, err := ExternalMergeSort(dev.NewFileFrom(xs), m, 0)
		if err != nil || !out.IsSorted() {
			return false
		}
		for _, v := range out.Records() {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSortIOsWithinBound(t *testing.T) {
	for _, tc := range []struct{ n, m, b int }{
		{1000, 64, 8},
		{5000, 128, 16},
		{20000, 256, 16},
		{100, 1000, 8}, // fits in memory: one run, zero merge passes
	} {
		dev, _ := NewDevice(tc.b)
		in := dev.NewFileFrom(randomRecords(tc.n, uint64(tc.n)))
		dev.ResetCounters()
		_, st, err := ExternalMergeSort(in, tc.m, 0)
		if err != nil {
			t.Fatal(err)
		}
		bound := SortIOBound(tc.n, tc.m, tc.b, st.Fanout)
		// Each pass reads and writes every record once; partial blocks give
		// a small additive slack per run.
		slack := int64(2 * (st.InitialRuns + 2) * (st.MergePasses + 1))
		if st.IOs > bound+slack {
			t.Errorf("n=%d m=%d b=%d: IOs %d exceed bound %d (+%d slack); stats %+v",
				tc.n, tc.m, tc.b, st.IOs, bound, slack, st)
		}
		// Sanity: at least one full read+write of the data.
		if st.IOs < 2*int64(tc.n/tc.b) {
			t.Errorf("n=%d: IOs %d suspiciously low", tc.n, st.IOs)
		}
	}
}

func TestMultiwayBeatsTwoWay(t *testing.T) {
	// The ablation: with the same memory, k-way merging needs fewer passes
	// (and so fewer I/Os) than 2-way.
	const n, m, b = 50000, 256, 8
	run := func(fanout int) SortStats {
		dev, _ := NewDevice(b)
		in := dev.NewFileFrom(randomRecords(n, 3))
		dev.ResetCounters()
		_, st, err := ExternalMergeSort(in, m, fanout)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	multi := run(0) // full fanout m/b-1 = 31
	two := run(2)
	if multi.MergePasses >= two.MergePasses {
		t.Errorf("multiway passes %d should beat 2-way %d", multi.MergePasses, two.MergePasses)
	}
	if multi.IOs >= two.IOs {
		t.Errorf("multiway IOs %d should beat 2-way %d", multi.IOs, two.IOs)
	}
	// log_31(196) = 2 passes vs log_2(196) = 8 passes.
	if multi.MergePasses != 2 || two.MergePasses != 8 {
		t.Errorf("passes: multi=%d (want 2), two=%d (want 8)", multi.MergePasses, two.MergePasses)
	}
}

func TestSortEdgeCases(t *testing.T) {
	dev, _ := NewDevice(4)
	// Empty input.
	out, st, err := ExternalMergeSort(dev.NewFile(), 16, 0)
	if err != nil || out.Len() != 0 || st.InitialRuns != 0 {
		t.Errorf("empty sort: len=%d runs=%d err=%v", out.Len(), st.InitialRuns, err)
	}
	// Single record.
	out, _, err = ExternalMergeSort(dev.NewFileFrom([]int64{5}), 16, 0)
	if err != nil || out.Len() != 1 || out.Records()[0] != 5 {
		t.Errorf("singleton sort failed: %v", err)
	}
	// Memory smaller than two blocks: rejected.
	if _, _, err := ExternalMergeSort(dev.NewFileFrom([]int64{1, 2}), 4, 0); err == nil {
		t.Error("tiny memory should error")
	}
	// Bad fanout.
	if _, _, err := ExternalMergeSort(dev.NewFileFrom([]int64{1, 2}), 16, 1); err == nil {
		t.Error("fanout 1 should error")
	}
	// Already sorted input stays sorted.
	sorted := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	out, _, err = ExternalMergeSort(dev.NewFileFrom(sorted), 8, 0)
	if err != nil || !out.IsSorted() {
		t.Errorf("sorted input: %v", err)
	}
}

func TestSortBoundFormula(t *testing.T) {
	if SortIOBound(0, 64, 8, 7) != 0 {
		t.Error("bound of empty input should be 0")
	}
	// n=1000, M=64, B=8: 16 initial runs, fanout 7 -> 2 passes.
	// bound = 2*125*(2+1) = 750.
	if got := SortIOBound(1000, 64, 8, 7); got != 750 {
		t.Errorf("bound = %d, want 750", got)
	}
}
