package iomodel_test

import (
	"fmt"

	"repro/internal/iomodel"
)

// External merge sort with exact block-transfer accounting: the I/O-model
// analysis from CS41, machine-checked.
func Example() {
	dev, err := iomodel.NewDevice(8) // 8 records per block
	if err != nil {
		fmt.Println(err)
		return
	}
	xs := make([]int64, 1000)
	for i := range xs {
		xs[i] = int64((i * 7919) % 1000)
	}
	in := dev.NewFileFrom(xs)
	dev.ResetCounters()
	out, st, err := iomodel.ExternalMergeSort(in, 64, 0) // 64 records of memory
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("sorted:", out.IsSorted())
	fmt.Printf("runs=%d passes=%d fanout=%d\n", st.InitialRuns, st.MergePasses, st.Fanout)
	fmt.Println("within model bound:",
		st.IOs <= iomodel.SortIOBound(1000, 64, 8, st.Fanout)+2*int64(st.InitialRuns+2)*int64(st.MergePasses+1))
	// Output:
	// sorted: true
	// runs=16 passes=2 fanout=7
	// within model bound: true
}
