package isa

import "fmt"

// This file implements the classic 5-stage in-order pipeline model
// (IF ID EX MEM WB) that CS31 covers under "pipelining": a timing model
// applied to a dynamic instruction trace produced by the CPU simulator.
// It accounts for data hazards (with or without forwarding, including the
// load-use hazard that stalls even with forwarding) and for control
// hazards (branches resolved at the end of EX, with either stall-on-branch
// or predict-not-taken fetch policies), yielding total cycles and CPI.

// BranchPolicy selects how the pipeline fetches past a branch.
type BranchPolicy int

// The branch policies.
const (
	// StallOnBranch stops fetching after every branch until it resolves at
	// the end of EX — the baseline drawn first in lecture.
	StallOnBranch BranchPolicy = iota
	// PredictNotTaken keeps fetching sequentially; taken branches squash
	// the wrong-path fetches and pay the resolution penalty.
	PredictNotTaken
)

// String returns the human-readable name.
func (p BranchPolicy) String() string {
	if p == StallOnBranch {
		return "stall-on-branch"
	}
	return "predict-not-taken"
}

// PipelineConfig parameterizes the timing model.
type PipelineConfig struct {
	Forwarding bool
	Branch     BranchPolicy
	// Width is the superscalar issue width: up to Width instructions may
	// occupy the same stage in the same cycle. 0 means 1 (scalar). This is
	// the "super-scalar" row of Table II: independent instructions reach
	// CPI ~ 1/Width, while dependent chains stay serialized at CPI ~ 1
	// regardless of width.
	Width int
}

// PipelineStats reports the outcome of a pipeline simulation.
type PipelineStats struct {
	Instructions  int
	Cycles        int64
	DataStalls    int64 // bubbles inserted for RAW hazards (excluding load-use when forwarding)
	LoadUseStalls int64 // bubbles charged to load-use hazards under forwarding
	ControlStalls int64 // bubbles charged to branches
	Config        PipelineConfig
}

// CPI returns cycles per instruction.
func (s PipelineStats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// IPC returns instructions per cycle (the superscalar figure of merit).
func (s PipelineStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// String returns the human-readable name.
func (s PipelineStats) String() string {
	return fmt.Sprintf("%d instrs, %d cycles, CPI %.3f (data %d, load-use %d, control %d) [fwd=%v, %v]",
		s.Instructions, s.Cycles, s.CPI(), s.DataStalls, s.LoadUseStalls, s.ControlStalls,
		s.Config.Forwarding, s.Config.Branch)
}

// SimulatePipeline runs the 5-stage timing model over a dynamic trace.
//
// The model computes, for each instruction, the cycle at which it occupies
// each stage, subject to: one instruction per stage per cycle; register
// values readable in ID only after the producer's WB when forwarding is
// off (write-first-half/read-second-half register file); with forwarding,
// ALU results forward EX→EX and loads forward MEM→EX (one bubble for a
// dependent instruction immediately after a load); branches resolve at the
// end of EX.
func SimulatePipeline(trace []TraceEntry, cfg PipelineConfig) PipelineStats {
	if cfg.Width <= 0 {
		cfg.Width = 1
	}
	st := PipelineStats{Instructions: len(trace), Config: cfg}
	if len(trace) == 0 {
		return st
	}

	// lastWrite[r] = index of most recent instruction writing register r.
	type writer struct {
		ex, mem, wb int64 // stage-completion cycles of the producer
		isLoad      bool
		valid       bool
	}
	var lastWrite [NumRegs]writer

	// Per-stage occupancy: ring buffers of the last Width cycle stamps.
	// An instruction may enter a stage no earlier than one cycle after the
	// instruction Width places back occupied it (at most Width per cycle).
	w := cfg.Width
	mkRing := func() []int64 {
		r := make([]int64, w)
		for i := range r {
			r[i] = -1
		}
		return r
	}
	ifR, idR, exR, memR, wbR := mkRing(), mkRing(), mkRing(), mkRing(), mkRing()
	slot := 0
	var fetchBlockedUntil int64 // earliest cycle the next IF may occur
	// In-order discipline: a younger instruction may share a stage cycle
	// with an older one (same issue group) but never pass it.
	var prevIF, prevID, prevEX, prevMEM, prevWB int64 = -1, -1, -1, -1, -1

	for _, te := range trace {
		ifC := max64(ifR[slot]+1, prevIF)
		if ifC < fetchBlockedUntil {
			ifC = fetchBlockedUntil
		}
		idC := max64(max64(ifC+1, idR[slot]+1), prevID)

		// RAW hazards: when forwarding is off, ID must wait for the
		// producer's WB cycle (same-cycle read is allowed: write first half,
		// read second half).
		if !cfg.Forwarding {
			for _, r := range te.SrcRegs {
				w := lastWrite[r]
				if w.valid && idC < w.wb {
					st.DataStalls += w.wb - idC
					idC = w.wb
				}
			}
		}

		exC := idC + 1
		if cfg.Forwarding {
			for _, r := range te.SrcRegs {
				w := lastWrite[r]
				if !w.valid {
					continue
				}
				// ALU results forward from the end of the producer's EX; load
				// results from the end of its MEM.
				ready := w.ex + 1
				if w.isLoad {
					ready = w.mem + 1
				}
				if exC < ready {
					if w.isLoad {
						st.LoadUseStalls += ready - exC
					} else {
						st.DataStalls += ready - exC
					}
					exC = ready
				}
			}
		}

		exC = max64(max64(exC, exR[slot]+1), prevEX)
		memC := max64(max64(exC+1, memR[slot]+1), prevMEM)
		wbC := max64(max64(memC+1, wbR[slot]+1), prevWB)

		// Control hazards: the next fetch may be constrained by this branch.
		if te.IsBranch {
			resolved := exC + 1 // target known after EX
			switch cfg.Branch {
			case StallOnBranch:
				if resolved > ifC+1 {
					st.ControlStalls += resolved - (ifC + 1)
				}
				fetchBlockedUntil = resolved
			case PredictNotTaken:
				if te.Taken {
					if resolved > ifC+1 {
						st.ControlStalls += resolved - (ifC + 1)
					}
					fetchBlockedUntil = resolved
				}
			}
		}

		for _, r := range te.DstRegs {
			lastWrite[r] = writer{ex: exC, mem: memC, wb: wbC, isLoad: te.IsLoad, valid: true}
		}
		ifR[slot], idR[slot], exR[slot], memR[slot], wbR[slot] = ifC, idC, exC, memC, wbC
		prevIF, prevID, prevEX, prevMEM, prevWB = ifC, idC, exC, memC, wbC
		if st.Cycles < wbC+1 {
			st.Cycles = wbC + 1 // cycles are 0-indexed
		}
		slot = (slot + 1) % w
	}
	return st
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TraceProgram assembles and runs src, returning the dynamic instruction
// trace for pipeline analysis along with the finished CPU.
func TraceProgram(src string, input []string, maxSteps int64) ([]TraceEntry, *CPU, error) {
	p, err := Assemble(src)
	if err != nil {
		return nil, nil, err
	}
	c := NewCPU(p)
	c.Input = input
	var trace []TraceEntry
	c.Trace = func(te TraceEntry) { trace = append(trace, te) }
	if err := c.Run(maxSteps); err != nil {
		return trace, c, err
	}
	return trace, c, nil
}
