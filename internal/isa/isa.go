// Package isa implements SWAT32, the 32-bit educational instruction set
// used for the CS31 assembly unit and the binary-bomb lab. It provides an
// assembler (AT&T-flavoured syntax, two-pass with labels and data
// directives), a disassembler, a CPU simulator with the IA32 stack and
// calling convention (push/pop/call/ret/leave, %ebp frames, condition
// codes), and a classic 5-stage pipeline model with hazard detection,
// forwarding, and CPI accounting.
//
// SWAT32 substitutes for IA32 in the reproduction: the lab's learning
// goals — reading and tracing assembly, understanding C-to-assembly
// translation, the stack discipline, and examining binaries — are
// properties of an ISA with those mechanisms, not of Intel's encoding.
package isa

import "fmt"

// Reg identifies one of the eight general-purpose registers. The names
// follow IA32 so lab handouts translate directly.
type Reg uint8

// The register file. ESP is the stack pointer and EBP the frame pointer
// by convention (enforced only by the instructions that use them
// implicitly: push, pop, call, ret, leave).
const (
	EAX Reg = iota
	EBX
	ECX
	EDX
	ESI
	EDI
	EBP
	ESP
	NumRegs
)

var regNames = [...]string{"eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp"}

// String returns the human-readable name.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return "%" + regNames[r]
	}
	return fmt.Sprintf("%%r?%d", uint8(r))
}

// RegByName resolves a register name like "eax" or "%eax".
func RegByName(name string) (Reg, bool) {
	if len(name) > 0 && name[0] == '%' {
		name = name[1:]
	}
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}

// Op is a SWAT32 opcode.
type Op uint8

// The instruction set. Arithmetic follows the AT&T "op src, dst"
// convention: dst = dst OP src.
const (
	NOP Op = iota
	HALT
	MOV
	ADD
	SUB
	AND
	OR
	XOR
	IMUL
	NEG
	NOT
	INC
	DEC
	SHL
	SAR
	SHR
	CMP  // flags of dst - src, no writeback
	TEST // flags of dst & src, no writeback
	PUSH
	POP
	CALL
	RET
	LEAVE
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JA
	LEA
	SYS
	MOVB // byte-sized move: load zero-extends, store writes the low byte
	IDIV // dst = dst / src, truncating toward zero; faults on zero divisor
	IMOD // dst = dst %% src (C semantics); faults on zero divisor
	numOps
)

var opNames = [...]string{
	"nop", "halt", "mov", "add", "sub", "and", "or", "xor", "imul",
	"neg", "not", "inc", "dec", "shl", "sar", "shr", "cmp", "test",
	"push", "pop", "call", "ret", "leave", "jmp", "je", "jne", "jl",
	"jle", "jg", "jge", "jb", "ja", "lea", "sys", "movb", "idiv", "imod",
}

// String returns the human-readable name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// opByName resolves a mnemonic, accepting an optional AT&T "l" width
// suffix (movl, addl, pushl, ...).
func opByName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name || n+"l" == name {
			return Op(i), true
		}
	}
	return 0, false
}

// Mode describes the operand addressing of an encoded instruction.
type Mode uint8

// The addressing modes. Mem operands are disp(reg): address = Imm + reg.
const (
	ModeNone   Mode = iota
	ModeImmReg      // op $imm, %reg2
	ModeRegReg      // op %reg1, %reg2
	ModeMemReg      // op disp(%reg1), %reg2   (load)
	ModeRegMem      // op %reg1, disp(%reg2)   (store)
	ModeReg         // op %reg1
	ModeImm         // op $imm (or a code label for jumps/call)
	ModeImmMem      // op $imm, disp(%reg2)    (store immediate)
)

// Instr is one decoded SWAT32 instruction. Imm holds immediate values and
// jump/call targets; Disp holds the displacement of memory operands, so
// forms like "mov $9, -4(%ebp)" encode both.
type Instr struct {
	Op   Op
	Mode Mode
	Reg1 Reg
	Reg2 Reg
	Imm  int32
	Disp int32
}

// InstrSize is the fixed encoded size of every instruction, in bytes:
// opcode, mode, reg1, reg2, imm32, disp32.
const InstrSize = 12

// Encode packs the instruction into its 12-byte little-endian form.
func (in Instr) Encode() [InstrSize]byte {
	var b [InstrSize]byte
	b[0] = byte(in.Op)
	b[1] = byte(in.Mode)
	b[2] = byte(in.Reg1)
	b[3] = byte(in.Reg2)
	u := uint32(in.Imm)
	b[4] = byte(u)
	b[5] = byte(u >> 8)
	b[6] = byte(u >> 16)
	b[7] = byte(u >> 24)
	d := uint32(in.Disp)
	b[8] = byte(d)
	b[9] = byte(d >> 8)
	b[10] = byte(d >> 16)
	b[11] = byte(d >> 24)
	return b
}

// Decode unpacks an instruction from its encoded form.
func Decode(b []byte) (Instr, error) {
	if len(b) < InstrSize {
		return Instr{}, fmt.Errorf("isa: short instruction (%d bytes)", len(b))
	}
	in := Instr{
		Op:   Op(b[0]),
		Mode: Mode(b[1]),
		Reg1: Reg(b[2]),
		Reg2: Reg(b[3]),
		Imm:  int32(uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24),
		Disp: int32(uint32(b[8]) | uint32(b[9])<<8 | uint32(b[10])<<16 | uint32(b[11])<<24),
	}
	if in.Op >= numOps {
		return Instr{}, fmt.Errorf("isa: illegal opcode %d", b[0])
	}
	if in.Mode > ModeImmMem {
		return Instr{}, fmt.Errorf("isa: illegal mode %d", b[1])
	}
	if in.Reg1 >= NumRegs || in.Reg2 >= NumRegs {
		return Instr{}, fmt.Errorf("isa: illegal register")
	}
	return in, nil
}

// String renders the instruction in assembler syntax (disassembly).
func (in Instr) String() string {
	switch in.Mode {
	case ModeNone:
		return in.Op.String()
	case ModeImmReg:
		return fmt.Sprintf("%s $%d, %s", in.Op, in.Imm, in.Reg2)
	case ModeRegReg:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Reg1, in.Reg2)
	case ModeMemReg:
		return fmt.Sprintf("%s %d(%s), %s", in.Op, in.Disp, in.Reg1, in.Reg2)
	case ModeRegMem:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Reg1, in.Disp, in.Reg2)
	case ModeReg:
		return fmt.Sprintf("%s %s", in.Op, in.Reg1)
	case ModeImm:
		if in.Op >= CALL && in.Op <= JA || in.Op == CALL {
			return fmt.Sprintf("%s 0x%x", in.Op, uint32(in.Imm))
		}
		return fmt.Sprintf("%s $%d", in.Op, in.Imm)
	case ModeImmMem:
		return fmt.Sprintf("%s $%d, %d(%s)", in.Op, in.Imm, in.Disp, in.Reg2)
	}
	return fmt.Sprintf("%s <bad mode %d>", in.Op, in.Mode)
}

// IsJump reports whether the opcode is a control transfer resolved from
// the condition codes or unconditionally (excluding call/ret).
func (o Op) IsJump() bool { return o >= JMP && o <= JA }

// IsCond reports whether the opcode is a conditional jump.
func (o Op) IsCond() bool { return o > JMP && o <= JA }

// Program is an assembled SWAT32 binary image: code, initialized data,
// and the symbol table produced by the assembler.
type Program struct {
	Code    []byte         // encoded instructions, loaded at address 0
	Data    []byte         // initialized data, loaded at DataBase
	Symbols map[string]int // label -> address
	Entry   int            // address of the entry label ("main" or 0)
}

// DataBase is the load address of the data segment. Code is loaded at 0;
// the gap catches wild pointers in student programs.
const DataBase = 0x10000

// StackTop is the initial %esp. The stack grows down from here.
const StackTop = 0x20000
