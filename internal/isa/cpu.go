package isa

import (
	"errors"
	"fmt"
	"strings"
)

// MemSize is the size of the simulated flat address space: code at 0,
// data at DataBase, stack growing down from StackTop.
const MemSize = StackTop

// Runtime service numbers for the SYS instruction.
const (
	SysExit    = 0 // terminate; %eax is the exit status
	SysPrint   = 1 // append decimal %eax and a newline to Output
	SysPrintS  = 2 // append the NUL-terminated string at address %eax
	SysRead    = 3 // read next input line into buffer at %eax, cap %ebx; %eax = length or -1
	SysExplode = 4 // the bomb: returns ErrExploded
)

// ErrExploded is returned by Run when the program executes sys $4 — the
// binary bomb's failure path.
var ErrExploded = errors.New("isa: BOOM! the bomb has exploded")

// ErrMaxSteps is returned when Run exceeds its step budget, catching the
// infinite loops student programs write.
var ErrMaxSteps = errors.New("isa: step budget exhausted")

// Flags is the condition-code register.
type Flags struct {
	ZF, SF, OF, CF bool
}

// TraceEntry records one executed instruction for the pipeline model and
// for gdb-style tracing.
type TraceEntry struct {
	PC       int
	In       Instr
	SrcRegs  []Reg // registers read
	DstRegs  []Reg // registers written
	IsLoad   bool
	IsStore  bool
	IsBranch bool
	Taken    bool
}

// CPU is the SWAT32 processor simulator.
type CPU struct {
	R      [NumRegs]int32
	PC     int
	Flags  Flags
	Mem    []byte
	Halted bool
	Exit   int32

	// Output accumulates sys-call output; Input supplies sys $3 lines.
	Output strings.Builder
	Input  []string
	inPos  int

	// Trace, when non-nil, receives every executed instruction.
	Trace func(TraceEntry)

	Steps int64 // instructions executed
}

// NewCPU creates a CPU with the program loaded and registers initialized
// per the SWAT32 ABI: %esp = StackTop, PC = program entry.
func NewCPU(p *Program) *CPU {
	c := &CPU{Mem: make([]byte, MemSize), PC: p.Entry}
	copy(c.Mem, p.Code)
	copy(c.Mem[DataBase:], p.Data)
	c.R[ESP] = StackTop
	return c
}

// Load32 reads a little-endian 32-bit word from memory.
func (c *CPU) Load32(addr int32) (int32, error) {
	a := int(addr)
	if a < 0 || a+4 > len(c.Mem) {
		return 0, fmt.Errorf("isa: segmentation fault: load at %#x", uint32(addr))
	}
	return int32(uint32(c.Mem[a]) | uint32(c.Mem[a+1])<<8 | uint32(c.Mem[a+2])<<16 | uint32(c.Mem[a+3])<<24), nil
}

// Store32 writes a little-endian 32-bit word to memory.
func (c *CPU) Store32(addr, v int32) error {
	a := int(addr)
	if a < 0 || a+4 > len(c.Mem) {
		return fmt.Errorf("isa: segmentation fault: store at %#x", uint32(addr))
	}
	c.Mem[a] = byte(v)
	c.Mem[a+1] = byte(v >> 8)
	c.Mem[a+2] = byte(v >> 16)
	c.Mem[a+3] = byte(v >> 24)
	return nil
}

// LoadString reads a NUL-terminated string from memory.
func (c *CPU) LoadString(addr int32) (string, error) {
	a := int(addr)
	var b []byte
	for {
		if a < 0 || a >= len(c.Mem) {
			return "", fmt.Errorf("isa: segmentation fault: string at %#x", uint32(addr))
		}
		if c.Mem[a] == 0 {
			return string(b), nil
		}
		b = append(b, c.Mem[a])
		a++
		if len(b) > 1<<16 {
			return "", fmt.Errorf("isa: unterminated string at %#x", uint32(addr))
		}
	}
}

// StoreBytes copies raw bytes into memory.
func (c *CPU) StoreBytes(addr int32, b []byte) error {
	a := int(addr)
	if a < 0 || a+len(b) > len(c.Mem) {
		return fmt.Errorf("isa: segmentation fault: write %d bytes at %#x", len(b), uint32(addr))
	}
	copy(c.Mem[a:], b)
	return nil
}

func (c *CPU) push(v int32) error {
	c.R[ESP] -= 4
	return c.Store32(c.R[ESP], v)
}

func (c *CPU) pop() (int32, error) {
	v, err := c.Load32(c.R[ESP])
	if err != nil {
		return 0, err
	}
	c.R[ESP] += 4
	return v, nil
}

func (c *CPU) setArith(res int64, a, b int32, isSub bool) int32 {
	r := int32(res)
	c.Flags.ZF = r == 0
	c.Flags.SF = r < 0
	if isSub {
		c.Flags.CF = uint32(a) < uint32(b)
		c.Flags.OF = (a < 0) != (b < 0) && (r < 0) == (b < 0)
	} else {
		c.Flags.CF = uint64(uint32(a))+uint64(uint32(b)) > 0xffffffff
		c.Flags.OF = (a < 0) == (b < 0) && (r < 0) != (a < 0)
	}
	return r
}

func (c *CPU) setLogic(r int32) int32 {
	c.Flags.ZF = r == 0
	c.Flags.SF = r < 0
	c.Flags.CF = false
	c.Flags.OF = false
	return r
}

// condition evaluates a conditional jump opcode against the flags, using
// the signed (JL/JLE/JG/JGE) and unsigned (JB/JA) rules from lecture.
func (c *CPU) condition(op Op) bool {
	f := c.Flags
	switch op {
	case JMP:
		return true
	case JE:
		return f.ZF
	case JNE:
		return !f.ZF
	case JL:
		return f.SF != f.OF
	case JLE:
		return f.ZF || f.SF != f.OF
	case JG:
		return !f.ZF && f.SF == f.OF
	case JGE:
		return f.SF == f.OF
	case JB:
		return f.CF
	case JA:
		return !f.CF && !f.ZF
	}
	return false
}

// Step executes one instruction. It returns an error on faults; normal
// termination sets Halted.
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	if c.PC < 0 || c.PC+InstrSize > len(c.Mem) {
		return fmt.Errorf("isa: PC out of range: %#x", uint32(c.PC))
	}
	in, err := Decode(c.Mem[c.PC:])
	if err != nil {
		return fmt.Errorf("isa: at PC %#x: %w", uint32(c.PC), err)
	}
	te := TraceEntry{PC: c.PC, In: in}
	nextPC := c.PC + InstrSize
	c.Steps++

	// Resolve source value and destination for the two-operand forms.
	readSrc := func() (int32, error) {
		switch in.Mode {
		case ModeImmReg:
			return in.Imm, nil
		case ModeRegReg, ModeRegMem:
			te.SrcRegs = append(te.SrcRegs, in.Reg1)
			return c.R[in.Reg1], nil
		case ModeMemReg:
			te.SrcRegs = append(te.SrcRegs, in.Reg1)
			te.IsLoad = true
			return c.Load32(in.Disp + c.R[in.Reg1])
		case ModeImmMem:
			return in.Imm, nil
		}
		return 0, fmt.Errorf("isa: bad source mode %d for %s", in.Mode, in.Op)
	}
	readDst := func() (int32, error) {
		switch in.Mode {
		case ModeImmReg, ModeRegReg, ModeMemReg:
			te.SrcRegs = append(te.SrcRegs, in.Reg2)
			return c.R[in.Reg2], nil
		case ModeRegMem, ModeImmMem:
			te.SrcRegs = append(te.SrcRegs, in.Reg2)
			te.IsLoad = true
			return c.Load32(in.Disp + c.R[in.Reg2])
		}
		return 0, fmt.Errorf("isa: bad dest mode %d for %s", in.Mode, in.Op)
	}
	writeDst := func(v int32) error {
		switch in.Mode {
		case ModeImmReg, ModeRegReg, ModeMemReg:
			te.DstRegs = append(te.DstRegs, in.Reg2)
			c.R[in.Reg2] = v
			return nil
		case ModeRegMem, ModeImmMem:
			te.IsStore = true
			te.SrcRegs = append(te.SrcRegs, in.Reg2)
			return c.Store32(in.Disp+c.R[in.Reg2], v)
		}
		return fmt.Errorf("isa: bad write mode %d for %s", in.Mode, in.Op)
	}

	switch in.Op {
	case NOP:
	case HALT:
		c.Halted = true
	case MOV:
		v, err := readSrc()
		if err != nil {
			return err
		}
		// mov does not read its destination
		if in.Mode == ModeRegMem || in.Mode == ModeImmMem {
			te.IsStore = true
			te.SrcRegs = append(te.SrcRegs, in.Reg2)
			if err := c.Store32(in.Disp+c.R[in.Reg2], v); err != nil {
				return err
			}
		} else {
			te.DstRegs = append(te.DstRegs, in.Reg2)
			c.R[in.Reg2] = v
		}
	case MOVB:
		switch in.Mode {
		case ModeMemReg: // load byte, zero-extend
			te.SrcRegs = append(te.SrcRegs, in.Reg1)
			te.DstRegs = append(te.DstRegs, in.Reg2)
			te.IsLoad = true
			a := int(in.Disp + c.R[in.Reg1])
			if a < 0 || a >= len(c.Mem) {
				return fmt.Errorf("isa: segmentation fault: byte load at %#x", uint32(a))
			}
			c.R[in.Reg2] = int32(c.Mem[a])
		case ModeRegMem: // store low byte
			te.SrcRegs = append(te.SrcRegs, in.Reg1, in.Reg2)
			te.IsStore = true
			a := int(in.Disp + c.R[in.Reg2])
			if a < 0 || a >= len(c.Mem) {
				return fmt.Errorf("isa: segmentation fault: byte store at %#x", uint32(a))
			}
			c.Mem[a] = byte(c.R[in.Reg1])
		default:
			return fmt.Errorf("isa: bad movb mode %d", in.Mode)
		}
	case LEA:
		if in.Mode != ModeMemReg {
			return fmt.Errorf("isa: lea requires a memory source")
		}
		te.SrcRegs = append(te.SrcRegs, in.Reg1)
		te.DstRegs = append(te.DstRegs, in.Reg2)
		c.R[in.Reg2] = in.Disp + c.R[in.Reg1]
	case ADD, SUB, AND, OR, XOR, IMUL, IDIV, IMOD, CMP, TEST:
		src, err := readSrc()
		if err != nil {
			return err
		}
		dst, err := readDst()
		if err != nil {
			return err
		}
		var res int32
		switch in.Op {
		case ADD:
			res = c.setArith(int64(dst)+int64(src), dst, src, false)
		case SUB, CMP:
			res = c.setArith(int64(dst)-int64(src), dst, src, true)
		case AND, TEST:
			res = c.setLogic(dst & src)
		case OR:
			res = c.setLogic(dst | src)
		case XOR:
			res = c.setLogic(dst ^ src)
		case IMUL:
			full := int64(dst) * int64(src)
			res = int32(full)
			c.Flags.ZF = res == 0
			c.Flags.SF = res < 0
			c.Flags.OF = full != int64(res)
			c.Flags.CF = c.Flags.OF
		case IDIV, IMOD:
			if src == 0 {
				return fmt.Errorf("isa: division by zero at PC %#x", uint32(te.PC))
			}
			if in.Op == IDIV {
				res = c.setLogic(dst / src)
			} else {
				res = c.setLogic(dst % src)
			}
		}
		if in.Op != CMP && in.Op != TEST {
			if err := writeDst(res); err != nil {
				return err
			}
		}
	case NEG, NOT, INC, DEC:
		if in.Mode != ModeReg {
			return fmt.Errorf("isa: %s requires a register", in.Op)
		}
		te.SrcRegs = append(te.SrcRegs, in.Reg1)
		te.DstRegs = append(te.DstRegs, in.Reg1)
		v := c.R[in.Reg1]
		switch in.Op {
		case NEG:
			v = c.setArith(0-int64(v), 0, v, true)
		case NOT:
			v = ^v // x86 not does not touch flags
		case INC:
			v = c.setArith(int64(v)+1, v, 1, false)
		case DEC:
			v = c.setArith(int64(v)-1, v, 1, true)
		}
		c.R[in.Reg1] = v
	case SHL, SAR, SHR:
		if in.Mode != ModeImmReg && in.Mode != ModeRegReg {
			return fmt.Errorf("isa: %s requires imm/reg source and reg dest", in.Op)
		}
		var k int32
		if in.Mode == ModeImmReg {
			k = in.Imm
		} else {
			te.SrcRegs = append(te.SrcRegs, in.Reg1)
			k = c.R[in.Reg1]
		}
		k &= 31
		te.SrcRegs = append(te.SrcRegs, in.Reg2)
		te.DstRegs = append(te.DstRegs, in.Reg2)
		v := c.R[in.Reg2]
		switch in.Op {
		case SHL:
			v = v << uint(k)
		case SAR:
			v = v >> uint(k)
		case SHR:
			v = int32(uint32(v) >> uint(k))
		}
		c.R[in.Reg2] = c.setLogic(v)
	case PUSH:
		var v int32
		switch in.Mode {
		case ModeReg:
			te.SrcRegs = append(te.SrcRegs, in.Reg1)
			v = c.R[in.Reg1]
		case ModeImm:
			v = in.Imm
		default:
			return fmt.Errorf("isa: bad push mode")
		}
		te.IsStore = true
		te.SrcRegs = append(te.SrcRegs, ESP)
		te.DstRegs = append(te.DstRegs, ESP)
		if err := c.push(v); err != nil {
			return err
		}
	case POP:
		if in.Mode != ModeReg {
			return fmt.Errorf("isa: bad pop mode")
		}
		te.IsLoad = true
		te.SrcRegs = append(te.SrcRegs, ESP)
		te.DstRegs = append(te.DstRegs, in.Reg1, ESP)
		v, err := c.pop()
		if err != nil {
			return err
		}
		c.R[in.Reg1] = v
	case CALL:
		te.IsBranch, te.Taken = true, true
		te.IsStore = true
		te.SrcRegs = append(te.SrcRegs, ESP)
		te.DstRegs = append(te.DstRegs, ESP)
		if err := c.push(int32(nextPC)); err != nil {
			return err
		}
		nextPC = int(in.Imm)
	case RET:
		te.IsBranch, te.Taken = true, true
		te.IsLoad = true
		te.SrcRegs = append(te.SrcRegs, ESP)
		te.DstRegs = append(te.DstRegs, ESP)
		v, err := c.pop()
		if err != nil {
			return err
		}
		nextPC = int(v)
	case LEAVE:
		// movl %ebp, %esp ; popl %ebp
		te.SrcRegs = append(te.SrcRegs, EBP)
		te.DstRegs = append(te.DstRegs, ESP, EBP)
		te.IsLoad = true
		c.R[ESP] = c.R[EBP]
		v, err := c.pop()
		if err != nil {
			return err
		}
		c.R[EBP] = v
	case JMP, JE, JNE, JL, JLE, JG, JGE, JB, JA:
		te.IsBranch = true
		if c.condition(in.Op) {
			te.Taken = true
			nextPC = int(in.Imm)
		}
	case SYS:
		if err := c.service(in.Imm); err != nil {
			return err
		}
	default:
		return fmt.Errorf("isa: unimplemented opcode %s", in.Op)
	}

	c.PC = nextPC
	if c.Trace != nil {
		c.Trace(te)
	}
	return nil
}

func (c *CPU) service(num int32) error {
	switch num {
	case SysExit:
		c.Halted = true
		c.Exit = c.R[EAX]
	case SysPrint:
		fmt.Fprintf(&c.Output, "%d\n", c.R[EAX])
	case SysPrintS:
		s, err := c.LoadString(c.R[EAX])
		if err != nil {
			return err
		}
		c.Output.WriteString(s)
	case SysRead:
		if c.inPos >= len(c.Input) {
			c.R[EAX] = -1
			return nil
		}
		line := c.Input[c.inPos]
		c.inPos++
		maxLen := int(c.R[EBX])
		if maxLen < 1 {
			return fmt.Errorf("isa: sys read with buffer size %d", maxLen)
		}
		if len(line) > maxLen-1 {
			line = line[:maxLen-1]
		}
		if err := c.StoreBytes(c.R[EAX], append([]byte(line), 0)); err != nil {
			return err
		}
		c.R[EAX] = int32(len(line))
	case SysExplode:
		return ErrExploded
	default:
		return fmt.Errorf("isa: unknown service %d", num)
	}
	return nil
}

// Run executes until HALT/exit, a fault, or maxSteps instructions.
func (c *CPU) Run(maxSteps int64) error {
	for i := int64(0); !c.Halted; i++ {
		if i >= maxSteps {
			return ErrMaxSteps
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunProgram assembles, loads, and runs src with the given input lines,
// returning the final CPU for inspection. It is the one-call path used by
// tests and examples.
func RunProgram(src string, input []string, maxSteps int64) (*CPU, error) {
	p, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	c := NewCPU(p)
	c.Input = input
	if err := c.Run(maxSteps); err != nil {
		return c, err
	}
	return c, nil
}
