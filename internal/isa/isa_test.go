package isa

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op, mode, r1, r2 uint8, imm int32) bool {
		in := Instr{
			Op:   Op(op % uint8(numOps)),
			Mode: Mode(mode % 8),
			Reg1: Reg(r1 % uint8(NumRegs)),
			Reg2: Reg(r2 % uint8(NumRegs)),
			Imm:  imm,
		}
		e := in.Encode()
		got, err := Decode(e[:])
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer should error")
	}
	bad := Instr{Op: NOP}.Encode()
	bad[0] = 200
	if _, err := Decode(bad[:]); err == nil {
		t.Error("illegal opcode should error")
	}
	bad = Instr{Op: NOP}.Encode()
	bad[2] = 99
	if _, err := Decode(bad[:]); err == nil {
		t.Error("illegal register should error")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus $1, %eax",        // unknown mnemonic
		"movl $1, %zzz",         // unknown register
		"jmp nowhere",           // undefined symbol
		"a: nop\na: nop",        // duplicate label
		"movl %eax",             // wrong arity
		"movl 4(%eax), 8(%ebx)", // mem->mem unsupported
		".space -1",             // bad directive arg
		".asciz hello",          // unquoted string
		".bogus 1",              // unknown directive
		"shll 4(%eax), %ebx",    // shift from memory unsupported
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
main:
    movl $10, %eax
    movl %eax, %ebx
    addl $5, %ebx
    subl %eax, %ebx
    pushl %ebx
    popl %ecx
    cmpl $5, %ecx
    je ok
    sys $4
ok: halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Disassemble(p.Code)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mov $10, %eax", "push %ebx", "je 0x", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestSimpleArithmetic(t *testing.T) {
	cpu, err := RunProgram(`
main:
    movl $6, %eax
    movl $7, %ebx
    imull %ebx, %eax
    sys $1
    halt
`, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Output.String(); got != "42\n" {
		t.Errorf("output = %q", got)
	}
}

func TestRecursiveFactorial(t *testing.T) {
	// The canonical stack-discipline exercise: recursive factorial with
	// full %ebp frames.
	src := `
main:
    pushl $6
    call fact
    addl $4, %esp
    sys $1
    halt
fact:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    cmpl $1, %eax
    jle done
    movl %eax, %ebx
    decl %ebx
    pushl %eax
    pushl %ebx
    call fact
    addl $4, %esp
    popl %ebx
    imull %ebx, %eax
    jmp out
done:
    movl $1, %eax
out:
    popl %ebp
    ret
`
	cpu, err := RunProgram(src, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Output.String(); got != "720\n" {
		t.Errorf("6! output = %q, want 720", got)
	}
	if cpu.R[ESP] != StackTop {
		t.Errorf("stack not balanced: esp=%#x", cpu.R[ESP])
	}
}

func TestLoopFibonacci(t *testing.T) {
	src := `
main:
    movl $0, %eax      # fib(0)
    movl $1, %ebx      # fib(1)
    movl $10, %ecx     # counter
loop:
    cmpl $0, %ecx
    je done
    movl %ebx, %edx
    addl %eax, %ebx
    movl %edx, %eax
    decl %ecx
    jmp loop
done:
    sys $1
    halt
`
	cpu, err := RunProgram(src, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Output.String(); got != "55\n" {
		t.Errorf("fib(10) = %q, want 55", got)
	}
}

func TestDataSectionAndStrings(t *testing.T) {
	src := `
.data
greeting: .asciz "hello, world\n"
nums: .word 11, 22, 33
.text
main:
    movl $greeting, %eax
    sys $2
    movl $nums, %esi
    movl 4(%esi), %eax   # nums[1]
    sys $1
    halt
`
	cpu, err := RunProgram(src, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Output.String(); got != "hello, world\n22\n" {
		t.Errorf("output = %q", got)
	}
}

func TestSysRead(t *testing.T) {
	src := `
.data
buf: .space 32
.text
main:
    movl $buf, %eax
    movl $32, %ebx
    sys $3          # read line; eax = length
    sys $1          # print length
    movl $buf, %eax
    sys $2          # echo
    movl $buf, %eax
    movl $32, %ebx
    sys $3          # no more input: eax = -1
    sys $1
    halt
`
	cpu, err := RunProgram(src, []string{"abcde"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Output.String(); got != "5\nabcde-1\n" {
		t.Errorf("output = %q", got)
	}
}

func TestSignedVsUnsignedJumps(t *testing.T) {
	// -1 < 1 signed, but 0xffffffff > 1 unsigned: jl vs jb disagree.
	src := `
main:
    movl $-1, %eax
    cmpl $1, %eax     # flags of -1 - 1
    jl signedless
    sys $4
signedless:
    movl $-1, %eax
    cmpl $1, %eax
    jb wrong          # unsigned: 0xffffffff is NOT below 1
    movl $1, %eax
    sys $1
    halt
wrong:
    sys $4
`
	cpu, err := RunProgram(src, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Output.String(); got != "1\n" {
		t.Errorf("output = %q", got)
	}
}

func TestShifts(t *testing.T) {
	cpu, err := RunProgram(`
main:
    movl $-16, %eax
    sarl $2, %eax
    sys $1            # -4
    movl $-16, %eax
    shrl $28, %eax
    sys $1            # 15
    movl $3, %eax
    shll $4, %eax
    sys $1            # 48
    halt
`, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Output.String(); got != "-4\n15\n48\n" {
		t.Errorf("output = %q", got)
	}
}

func TestLeaveAndLea(t *testing.T) {
	cpu, err := RunProgram(`
main:
    call f
    sys $1
    halt
f:
    pushl %ebp
    movl %esp, %ebp
    subl $16, %esp
    movl $9, -4(%ebp)
    leal -4(%ebp), %eax
    movl 0(%eax), %eax
    leave
    ret
`, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Output.String(); got != "9\n" {
		t.Errorf("output = %q", got)
	}
	if cpu.R[ESP] != StackTop {
		t.Errorf("leave did not restore stack: esp=%#x", cpu.R[ESP])
	}
}

func TestSegfaults(t *testing.T) {
	_, err := RunProgram("main:\n movl 0(%eax), %ebx\n movl $-4, %eax\n movl 0(%eax), %ebx\n halt", nil, 100)
	if err == nil {
		t.Skip() // first load at 0 is legal (reads code); force a bad one below
	}
	_, err = RunProgram("main:\n movl $-4, %eax\n movl 0(%eax), %ebx\n halt", nil, 100)
	if err == nil || !strings.Contains(err.Error(), "segmentation fault") {
		t.Errorf("expected segfault, got %v", err)
	}
	_, err = RunProgram("main:\n movl $-4, %eax\n movl %ebx, 0(%eax)\n halt", nil, 100)
	if err == nil || !strings.Contains(err.Error(), "segmentation fault") {
		t.Errorf("expected store segfault, got %v", err)
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	_, err := RunProgram("main: jmp main", nil, 1000)
	if !errors.Is(err, ErrMaxSteps) {
		t.Errorf("expected ErrMaxSteps, got %v", err)
	}
}

func TestExplode(t *testing.T) {
	_, err := RunProgram("main: sys $4", nil, 100)
	if !errors.Is(err, ErrExploded) {
		t.Errorf("expected ErrExploded, got %v", err)
	}
}

func TestExitStatus(t *testing.T) {
	cpu, err := RunProgram("main:\n movl $42, %eax\n sys $0", nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !cpu.Halted || cpu.Exit != 42 {
		t.Errorf("halted=%v exit=%d", cpu.Halted, cpu.Exit)
	}
}

// --- pipeline model tests ---

func traceOf(t *testing.T, src string) []TraceEntry {
	t.Helper()
	tr, _, err := TraceProgram(src, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPipelineIdealCPIApproachesOne(t *testing.T) {
	// Long run of independent instructions: CPI -> 1 as n grows.
	var b strings.Builder
	b.WriteString("main:\n")
	for i := 0; i < 200; i++ {
		b.WriteString("  movl $1, %eax\n  movl $2, %ebx\n")
	}
	b.WriteString("  halt\n")
	tr := traceOf(t, b.String())
	st := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: PredictNotTaken})
	if cpi := st.CPI(); cpi > 1.05 {
		t.Errorf("ideal CPI = %.3f, want ~1", cpi)
	}
}

func TestPipelineForwardingReducesStalls(t *testing.T) {
	// Tight dependent chain: every instruction reads the previous result.
	var b strings.Builder
	b.WriteString("main:\n  movl $0, %eax\n")
	for i := 0; i < 100; i++ {
		b.WriteString("  addl $1, %eax\n")
	}
	b.WriteString("  halt\n")
	tr := traceOf(t, b.String())
	noFwd := SimulatePipeline(tr, PipelineConfig{Forwarding: false, Branch: PredictNotTaken})
	fwd := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: PredictNotTaken})
	if fwd.Cycles >= noFwd.Cycles {
		t.Errorf("forwarding should win: fwd=%d nofwd=%d", fwd.Cycles, noFwd.Cycles)
	}
	if noFwd.DataStalls == 0 {
		t.Error("dependent chain without forwarding must stall")
	}
	// ALU->ALU chains forward cleanly: EX-to-EX, no bubbles.
	if fwd.DataStalls != 0 || fwd.LoadUseStalls != 0 {
		t.Errorf("ALU chain with forwarding should not stall: %+v", fwd)
	}
}

func TestPipelineLoadUseHazard(t *testing.T) {
	src := `
.data
x: .word 5
.text
main:
    movl $x, %esi
    movl 0(%esi), %eax   # load
    addl $1, %eax        # immediately uses the load: 1 bubble even w/ fwd
    halt
`
	tr := traceOf(t, src)
	st := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: PredictNotTaken})
	if st.LoadUseStalls == 0 {
		t.Errorf("expected a load-use stall: %+v", st)
	}
}

func TestPipelineBranchPolicies(t *testing.T) {
	// A loop: taken branch every iteration.
	src := `
main:
    movl $50, %ecx
loop:
    decl %ecx
    cmpl $0, %ecx
    jne loop
    halt
`
	tr := traceOf(t, src)
	stall := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: StallOnBranch})
	pnt := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: PredictNotTaken})
	if pnt.Cycles > stall.Cycles {
		t.Errorf("predict-not-taken should not lose: pnt=%d stall=%d", pnt.Cycles, stall.Cycles)
	}
	if stall.ControlStalls == 0 || pnt.ControlStalls == 0 {
		t.Errorf("loops must pay control stalls: stall=%+v pnt=%+v", stall, pnt)
	}
	// The jne is taken 49 of 50 times; the final not-taken branch is free
	// under predict-not-taken but costs under stall-on-branch.
	if pnt.ControlStalls >= stall.ControlStalls {
		t.Errorf("pnt control stalls %d should be < stall-policy %d", pnt.ControlStalls, stall.ControlStalls)
	}
}

func TestPipelineEmptyTrace(t *testing.T) {
	st := SimulatePipeline(nil, PipelineConfig{})
	if st.Cycles != 0 || st.CPI() != 0 {
		t.Errorf("empty trace: %+v", st)
	}
}

func TestSuperscalarIndependentStream(t *testing.T) {
	// Independent instructions: width 2 should approach CPI 0.5.
	var b strings.Builder
	b.WriteString("main:\n")
	for i := 0; i < 200; i++ {
		b.WriteString("  movl $1, %eax\n  movl $2, %ebx\n")
	}
	b.WriteString("  halt\n")
	tr := traceOf(t, b.String())
	scalar := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: PredictNotTaken, Width: 1})
	wide := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: PredictNotTaken, Width: 2})
	if cpi := wide.CPI(); cpi > 0.56 {
		t.Errorf("width-2 CPI on independent stream = %.3f, want ~0.5", cpi)
	}
	if wide.Cycles >= scalar.Cycles {
		t.Errorf("width 2 (%d cycles) should beat scalar (%d)", wide.Cycles, scalar.Cycles)
	}
	if ipc := wide.IPC(); ipc < 1.8 {
		t.Errorf("width-2 IPC = %.3f, want ~2", ipc)
	}
}

func TestSuperscalarDependentChainGainsNothing(t *testing.T) {
	// A fully dependent chain cannot exploit width: CPI stays ~1.
	var b strings.Builder
	b.WriteString("main:\n  movl $0, %eax\n")
	for i := 0; i < 200; i++ {
		b.WriteString("  addl $1, %eax\n")
	}
	b.WriteString("  halt\n")
	tr := traceOf(t, b.String())
	scalar := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: PredictNotTaken, Width: 1})
	wide := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: PredictNotTaken, Width: 4})
	// Width must not make a dependent chain *faster* than the data flow
	// allows: EX-to-EX forwarding serializes at one add per cycle.
	if wide.Cycles < scalar.Cycles-5 {
		t.Errorf("dependent chain: width 4 = %d cycles vs scalar %d — impossible speedup",
			wide.Cycles, scalar.Cycles)
	}
	if cpi := wide.CPI(); cpi < 0.95 {
		t.Errorf("dependent-chain CPI at width 4 = %.3f, want ~1", cpi)
	}
}

func TestSuperscalarWidthMonotone(t *testing.T) {
	// More width never increases cycle count on any trace.
	src := `
main:
    movl $30, %ecx
loop:
    movl $1, %eax
    movl $2, %ebx
    addl %ebx, %eax
    decl %ecx
    cmpl $0, %ecx
    jne loop
    halt`
	tr := traceOf(t, src)
	prev := int64(1 << 62)
	for _, w := range []int{1, 2, 4, 8} {
		st := SimulatePipeline(tr, PipelineConfig{Forwarding: true, Branch: PredictNotTaken, Width: w})
		if st.Cycles > prev {
			t.Errorf("width %d: %d cycles > previous %d", w, st.Cycles, prev)
		}
		prev = st.Cycles
	}
}

func TestDisassemblyReassembles(t *testing.T) {
	// The disassembler's output is itself valid assembler input (jump
	// targets print as absolute hex, which the assembler accepts), and
	// reassembling reproduces the exact code bytes.
	src := `
main:
    movl $10, %ecx
    movl $0, %eax
loop:
    addl %ecx, %eax
    decl %ecx
    cmpl $0, %ecx
    jne loop
    pushl %eax
    call out
    addl $4, %esp
    halt
out:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    sys $1
    leave
    ret
`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := Disassemble(p1.Code)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the "addr:" prefixes to get plain assembly.
	var clean strings.Builder
	for _, ln := range strings.Split(dis, "\n") {
		if i := strings.Index(ln, ":"); i >= 0 {
			clean.WriteString(ln[i+1:])
		}
		clean.WriteByte('\n')
	}
	p2, err := Assemble(clean.String())
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, clean.String())
	}
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("code sizes differ: %d vs %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Fatalf("byte %d differs after round trip", i)
		}
	}
}
