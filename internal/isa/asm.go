package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates SWAT32 assembly source into a Program. The syntax
// is AT&T-flavoured, matching what CS31 students read in handouts:
//
//	.data                      switch to the data section
//	msg:   .asciz "hello"      NUL-terminated string
//	nums:  .word 1, 2, 3       32-bit words
//	buf:   .space 64           zeroed bytes
//	.text                      switch to the code section (default)
//	main:
//	    movl $10, %eax         immediate -> register
//	    movl %eax, %ebx        register -> register
//	    movl 8(%ebp), %eax     memory load, disp(%base)
//	    movl %eax, -4(%ebp)    memory store
//	    movl $msg, %esi        label address as immediate
//	    pushl %eax             (also pushl $imm)
//	    call fact
//	    jle done               conditional jumps take a label
//	    sys $1                 runtime service call
//
// Comments run from '#' or ';' to end of line. Mnemonics accept an
// optional 'l' suffix. Assembly is two-pass: pass one sizes sections and
// collects labels, pass two encodes.
func Assemble(src string) (*Program, error) {
	lines := strings.Split(src, "\n")

	type item struct {
		line    int
		label   string   // label defined on this line (without colon), or ""
		mnem    string   // instruction or directive, or ""
		args    []string // raw operand strings
		section int      // 0 = text, 1 = data
	}
	var items []item
	section := 0
	for ln, raw := range lines {
		s := raw
		if i := strings.IndexAny(s, "#;"); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		it := item{line: ln + 1, section: section}
		// Leading label(s): "name:" possibly followed by an instruction.
		for {
			i := strings.Index(s, ":")
			if i < 0 {
				break
			}
			head := strings.TrimSpace(s[:i])
			if !isIdent(head) {
				break
			}
			if it.label != "" {
				// Two labels on one line: emit the first as its own item.
				items = append(items, item{line: it.line, label: it.label, section: section})
			}
			it.label = head
			s = strings.TrimSpace(s[i+1:])
		}
		if s != "" {
			fields := strings.SplitN(s, " ", 2)
			it.mnem = strings.ToLower(fields[0])
			if len(fields) == 2 {
				it.args = splitOperands(fields[1])
			}
			switch it.mnem {
			case ".text":
				section = 0
				it.mnem = ""
			case ".data":
				section = 1
				it.mnem = ""
			}
			it.section = section
			if it.mnem == "" && it.label == "" {
				continue
			}
		}
		items = append(items, it)
	}

	// Pass 1: assign addresses.
	symbols := make(map[string]int)
	codeAddr, dataAddr := 0, DataBase
	sizeof := func(it item) (int, error) {
		switch it.mnem {
		case "":
			return 0, nil
		case ".word":
			return 4 * len(it.args), nil
		case ".space":
			if len(it.args) != 1 {
				return 0, fmt.Errorf("line %d: .space takes one size", it.line)
			}
			n, err := strconv.Atoi(it.args[0])
			if err != nil || n < 0 {
				return 0, fmt.Errorf("line %d: bad .space size %q", it.line, it.args[0])
			}
			return n, nil
		case ".asciz", ".string":
			if len(it.args) != 1 {
				return 0, fmt.Errorf("line %d: .asciz takes one string", it.line)
			}
			s, err := strconv.Unquote(it.args[0])
			if err != nil {
				return 0, fmt.Errorf("line %d: bad string %s", it.line, it.args[0])
			}
			return len(s) + 1, nil
		default:
			if strings.HasPrefix(it.mnem, ".") {
				return 0, fmt.Errorf("line %d: unknown directive %s", it.line, it.mnem)
			}
			return InstrSize, nil
		}
	}
	for _, it := range items {
		addr := &codeAddr
		if it.section == 1 {
			addr = &dataAddr
		}
		if it.label != "" {
			if _, dup := symbols[it.label]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", it.line, it.label)
			}
			symbols[it.label] = *addr
		}
		n, err := sizeof(it)
		if err != nil {
			return nil, err
		}
		*addr += n
	}

	// Pass 2: encode.
	prog := &Program{Symbols: symbols}
	resolve := func(tok string, line int) (int32, error) {
		if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
			return int32(v), nil
		}
		if a, ok := symbols[tok]; ok {
			return int32(a), nil
		}
		return 0, fmt.Errorf("line %d: undefined symbol %q", line, tok)
	}
	for _, it := range items {
		switch it.mnem {
		case "":
			continue
		case ".word":
			for _, a := range it.args {
				v, err := resolve(a, it.line)
				if err != nil {
					return nil, err
				}
				prog.Data = append(prog.Data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
		case ".space":
			n, _ := strconv.Atoi(it.args[0])
			prog.Data = append(prog.Data, make([]byte, n)...)
		case ".asciz", ".string":
			s, _ := strconv.Unquote(it.args[0])
			prog.Data = append(prog.Data, []byte(s)...)
			prog.Data = append(prog.Data, 0)
		default:
			in, err := encodeInstr(it.mnem, it.args, it.line, resolve)
			if err != nil {
				return nil, err
			}
			e := in.Encode()
			prog.Code = append(prog.Code, e[:]...)
		}
	}
	if a, ok := symbols["main"]; ok {
		prog.Entry = a
	}
	return prog, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits "a, b" respecting quoted strings and parentheses.
func splitOperands(s string) []string {
	var out []string
	depth, inStr := 0, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inStr || i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

type operand struct {
	kind byte // 'i' imm, 'r' reg, 'm' mem
	reg  Reg
	imm  int32
}

func parseOperand(tok string, line int, resolve func(string, int) (int32, error)) (operand, error) {
	tok = strings.TrimSpace(tok)
	switch {
	case strings.HasPrefix(tok, "$"):
		v, err := resolve(tok[1:], line)
		if err != nil {
			return operand{}, err
		}
		return operand{kind: 'i', imm: v}, nil
	case strings.HasPrefix(tok, "%"):
		r, ok := RegByName(tok)
		if !ok {
			return operand{}, fmt.Errorf("line %d: unknown register %q", line, tok)
		}
		return operand{kind: 'r', reg: r}, nil
	case strings.Contains(tok, "("):
		i := strings.Index(tok, "(")
		if !strings.HasSuffix(tok, ")") {
			return operand{}, fmt.Errorf("line %d: bad memory operand %q", line, tok)
		}
		dispTok := strings.TrimSpace(tok[:i])
		var disp int32
		if dispTok != "" {
			v, err := resolve(dispTok, line)
			if err != nil {
				return operand{}, err
			}
			disp = v
		}
		r, ok := RegByName(strings.TrimSpace(tok[i+1 : len(tok)-1]))
		if !ok {
			return operand{}, fmt.Errorf("line %d: bad base register in %q", line, tok)
		}
		return operand{kind: 'm', reg: r, imm: disp}, nil
	default:
		// bare symbol or number: jump/call target
		v, err := resolve(tok, line)
		if err != nil {
			return operand{}, err
		}
		return operand{kind: 'i', imm: v}, nil
	}
}

func encodeInstr(mnem string, args []string, line int, resolve func(string, int) (int32, error)) (Instr, error) {
	op, ok := opByName(mnem)
	if !ok {
		return Instr{}, fmt.Errorf("line %d: unknown mnemonic %q", line, mnem)
	}
	ops := make([]operand, len(args))
	for i, a := range args {
		o, err := parseOperand(a, line, resolve)
		if err != nil {
			return Instr{}, err
		}
		ops[i] = o
	}
	bad := func() (Instr, error) {
		return Instr{}, fmt.Errorf("line %d: bad operands for %s", line, mnem)
	}
	switch op {
	case NOP, HALT, RET, LEAVE:
		if len(ops) != 0 {
			return bad()
		}
		return Instr{Op: op, Mode: ModeNone}, nil
	case NEG, NOT, INC, DEC:
		if len(ops) != 1 || ops[0].kind != 'r' {
			return bad()
		}
		return Instr{Op: op, Mode: ModeReg, Reg1: ops[0].reg}, nil
	case PUSH:
		if len(ops) != 1 {
			return bad()
		}
		switch ops[0].kind {
		case 'r':
			return Instr{Op: op, Mode: ModeReg, Reg1: ops[0].reg}, nil
		case 'i':
			return Instr{Op: op, Mode: ModeImm, Imm: ops[0].imm}, nil
		}
		return bad()
	case POP:
		if len(ops) != 1 || ops[0].kind != 'r' {
			return bad()
		}
		return Instr{Op: op, Mode: ModeReg, Reg1: ops[0].reg}, nil
	case CALL, JMP, JE, JNE, JL, JLE, JG, JGE, JB, JA:
		if len(ops) != 1 || ops[0].kind != 'i' {
			return bad()
		}
		return Instr{Op: op, Mode: ModeImm, Imm: ops[0].imm}, nil
	case SYS:
		if len(ops) != 1 || ops[0].kind != 'i' {
			return bad()
		}
		return Instr{Op: op, Mode: ModeImm, Imm: ops[0].imm}, nil
	case LEA:
		if len(ops) != 2 || ops[0].kind != 'm' || ops[1].kind != 'r' {
			return bad()
		}
		return Instr{Op: op, Mode: ModeMemReg, Reg1: ops[0].reg, Reg2: ops[1].reg, Disp: ops[0].imm}, nil
	case MOVB:
		if len(ops) != 2 {
			return bad()
		}
		switch {
		case ops[0].kind == 'm' && ops[1].kind == 'r':
			return Instr{Op: op, Mode: ModeMemReg, Reg1: ops[0].reg, Reg2: ops[1].reg, Disp: ops[0].imm}, nil
		case ops[0].kind == 'r' && ops[1].kind == 'm':
			return Instr{Op: op, Mode: ModeRegMem, Reg1: ops[0].reg, Reg2: ops[1].reg, Disp: ops[1].imm}, nil
		}
		return bad()
	case MOV, ADD, SUB, AND, OR, XOR, IMUL, IDIV, IMOD, CMP, TEST, SHL, SAR, SHR:
		if len(ops) != 2 {
			return bad()
		}
		src, dst := ops[0], ops[1]
		switch {
		case src.kind == 'i' && dst.kind == 'r':
			return Instr{Op: op, Mode: ModeImmReg, Reg2: dst.reg, Imm: src.imm}, nil
		case src.kind == 'r' && dst.kind == 'r':
			return Instr{Op: op, Mode: ModeRegReg, Reg1: src.reg, Reg2: dst.reg}, nil
		case src.kind == 'm' && dst.kind == 'r':
			if op == SHL || op == SAR || op == SHR {
				return bad()
			}
			return Instr{Op: op, Mode: ModeMemReg, Reg1: src.reg, Reg2: dst.reg, Disp: src.imm}, nil
		case src.kind == 'r' && dst.kind == 'm':
			if op != MOV && op != ADD && op != SUB && op != CMP {
				return bad()
			}
			return Instr{Op: op, Mode: ModeRegMem, Reg1: src.reg, Reg2: dst.reg, Disp: dst.imm}, nil
		case src.kind == 'i' && dst.kind == 'm':
			if op != MOV && op != CMP {
				return bad()
			}
			return Instr{Op: op, Mode: ModeImmMem, Reg2: dst.reg, Imm: src.imm, Disp: dst.imm}, nil
		}
		return bad()
	}
	return bad()
}

// Disassemble decodes an entire code image back to assembler text, one
// instruction per line with addresses — the gdb "disas" view students use
// on the bomb.
func Disassemble(code []byte) (string, error) {
	var b strings.Builder
	for off := 0; off+InstrSize <= len(code); off += InstrSize {
		in, err := Decode(code[off:])
		if err != nil {
			return b.String(), fmt.Errorf("at %#x: %w", off, err)
		}
		fmt.Fprintf(&b, "%#06x:  %s\n", off, in)
	}
	return b.String(), nil
}
