package isa_test

import (
	"fmt"

	"repro/internal/isa"
)

// Assemble and run a SWAT32 program.
func Example() {
	cpu, err := isa.RunProgram(`
main:
    movl $5, %ecx
    movl $1, %eax
loop:
    imull %ecx, %eax
    decl %ecx
    cmpl $0, %ecx
    jg loop
    sys $1
    halt
`, nil, 1000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(cpu.Output.String())
	// Output: 120
}

// The pipeline timing model quantifies what forwarding buys.
func ExampleSimulatePipeline() {
	trace, _, err := isa.TraceProgram(`
main:
    movl $0, %eax
    addl $1, %eax
    addl $1, %eax
    addl $1, %eax
    halt`, nil, 100)
	if err != nil {
		fmt.Println(err)
		return
	}
	with := isa.SimulatePipeline(trace, isa.PipelineConfig{Forwarding: true})
	without := isa.SimulatePipeline(trace, isa.PipelineConfig{Forwarding: false})
	fmt.Println(with.Cycles < without.Cycles)
	// Output: true
}
