package mp

import (
	"errors"
	"fmt"
)

// This file implements the MPI collectives over point-to-point messages.
// Bcast, Reduce, and Barrier use binomial trees (⌈log2 p⌉ rounds);
// Allgather uses a ring; Scan is the upstream-prefix chain. Each is the
// algorithm presented in the CS87 communication-patterns lecture.

// Barrier blocks until every rank has entered it (tree reduce to rank 0,
// then tree release).
func (c *Comm) Barrier() error {
	if _, err := c.Reduce(0, []int64{0}, func(a, b int64) int64 { return 0 }); err != nil {
		return err
	}
	_, err := c.Bcast(0, []int64{0})
	return err
}

// Bcast distributes root's data to every rank via a binomial tree and
// returns the received slice on every rank (root returns its own data).
func (c *Comm) Bcast(root int, data []int64) ([]int64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mp: bcast root %d invalid", root)
	}
	p := c.Size()
	// Re-number so root is virtual rank 0.
	vr := (c.Rank() - root + p) % p
	var buf []int64
	if vr == 0 {
		buf = data
	} else {
		// Receive from the virtual parent: clear the lowest set bit.
		parent := (vr&(vr-1) + root) % p
		m, err := c.Recv(parent, tagBcast)
		if err != nil {
			return nil, err
		}
		var ok bool
		buf, ok = m.Data.([]int64)
		if !ok {
			return nil, errors.New("mp: bcast payload type mismatch")
		}
	}
	// Forward to virtual children: vr + 2^k for each k past vr's lowest
	// set bit range.
	for bit := 1; bit < p; bit <<= 1 {
		if vr&(bit-1) == 0 && vr&bit == 0 {
			child := vr | bit
			if child < p {
				if err := c.Send((child+root)%p, tagBcast, buf); err != nil {
					return nil, err
				}
			}
		}
	}
	return buf, nil
}

// Reduce combines each rank's contribution elementwise with op, leaving
// the result at root (others get nil). Uses a binomial tree: log2(p)
// rounds.
func (c *Comm) Reduce(root int, data []int64, op func(a, b int64) int64) ([]int64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mp: reduce root %d invalid", root)
	}
	p := c.Size()
	vr := (c.Rank() - root + p) % p
	acc := append([]int64(nil), data...)
	for bit := 1; bit < p; bit <<= 1 {
		if vr&bit != 0 {
			// Send to the partner with this bit cleared, then exit the tree.
			parent := vr &^ bit
			if err := c.Send((parent+root)%p, tagReduce, acc); err != nil {
				return nil, err
			}
			return nil, nil
		}
		partner := vr | bit
		if partner < p {
			m, err := c.Recv((partner+root)%p, tagReduce)
			if err != nil {
				return nil, err
			}
			other, ok := m.Data.([]int64)
			if !ok {
				return nil, errors.New("mp: reduce payload type mismatch")
			}
			if len(other) != len(acc) {
				return nil, errors.New("mp: reduce length mismatch across ranks")
			}
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
	}
	return acc, nil
}

// Allreduce is Reduce followed by Bcast: every rank gets the result.
func (c *Comm) Allreduce(data []int64, op func(a, b int64) int64) ([]int64, error) {
	res, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, res)
}

// Scatter splits root's data into Size equal chunks, delivering the i-th
// chunk to rank i. len(data) must be divisible by Size (root only).
func (c *Comm) Scatter(root int, data []int64) ([]int64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mp: scatter root %d invalid", root)
	}
	p := c.Size()
	if c.Rank() == root {
		if len(data)%p != 0 {
			return nil, fmt.Errorf("mp: scatter length %d not divisible by %d", len(data), p)
		}
		chunk := len(data) / p
		var mine []int64
		for r := 0; r < p; r++ {
			part := append([]int64(nil), data[r*chunk:(r+1)*chunk]...)
			if r == root {
				mine = part
				continue
			}
			if err := c.Send(r, tagScatter, part); err != nil {
				return nil, err
			}
		}
		return mine, nil
	}
	m, err := c.Recv(root, tagScatter)
	if err != nil {
		return nil, err
	}
	part, ok := m.Data.([]int64)
	if !ok {
		return nil, errors.New("mp: scatter payload type mismatch")
	}
	return part, nil
}

// Gather collects each rank's chunk at root (rank order preserved);
// non-roots get nil.
func (c *Comm) Gather(root int, data []int64) ([]int64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mp: gather root %d invalid", root)
	}
	if c.Rank() != root {
		return nil, c.Send(root, tagGather, append([]int64(nil), data...))
	}
	parts := make([][]int64, c.Size())
	parts[root] = data
	for i := 0; i < c.Size()-1; i++ {
		m, err := c.Recv(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		part, ok := m.Data.([]int64)
		if !ok {
			return nil, errors.New("mp: gather payload type mismatch")
		}
		parts[m.Source] = part
	}
	var out []int64
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Allgather gives every rank the concatenation of all chunks (equal chunk
// sizes), using the ring algorithm: p-1 rounds of pass-to-the-right.
func (c *Comm) Allgather(data []int64) ([]int64, error) {
	p := c.Size()
	n := len(data)
	out := make([]int64, n*p)
	copy(out[c.Rank()*n:], data)
	cur := append([]int64(nil), data...)
	curOwner := c.Rank()
	right := (c.Rank() + 1) % p
	left := (c.Rank() - 1 + p) % p
	for round := 0; round < p-1; round++ {
		m, err := c.SendRecv(right, tagAllgather, append([]int64(nil), cur...), left, tagAllgather)
		if err != nil {
			return nil, err
		}
		incoming, ok := m.Data.([]int64)
		if !ok {
			return nil, errors.New("mp: allgather payload type mismatch")
		}
		if len(incoming) != n {
			return nil, errors.New("mp: allgather chunk size mismatch")
		}
		curOwner = (curOwner - 1 + p) % p
		copy(out[curOwner*n:], incoming)
		cur = incoming
	}
	return out, nil
}

// Scan computes the inclusive prefix reduction: rank i receives
// op(data_0, ..., data_i), via the linear chain (p-1 rounds end-to-end,
// one hop each).
func (c *Comm) Scan(data []int64, op func(a, b int64) int64) ([]int64, error) {
	acc := append([]int64(nil), data...)
	if c.Rank() > 0 {
		m, err := c.Recv(c.Rank()-1, tagScan)
		if err != nil {
			return nil, err
		}
		prev, ok := m.Data.([]int64)
		if !ok {
			return nil, errors.New("mp: scan payload type mismatch")
		}
		if len(prev) != len(acc) {
			return nil, errors.New("mp: scan length mismatch")
		}
		for i := range acc {
			acc[i] = op(prev[i], acc[i])
		}
	}
	if c.Rank() < c.Size()-1 {
		if err := c.Send(c.Rank()+1, tagScan, append([]int64(nil), acc...)); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Alltoall performs the full personalized exchange: rank i sends chunk j
// of its data to rank j and receives chunk i from everyone. len(data)
// must be divisible by Size.
func (c *Comm) Alltoall(data []int64) ([]int64, error) {
	p := c.Size()
	if len(data)%p != 0 {
		return nil, fmt.Errorf("mp: alltoall length %d not divisible by %d", len(data), p)
	}
	n := len(data) / p
	out := make([]int64, len(data))
	for r := 0; r < p; r++ {
		chunk := append([]int64(nil), data[r*n:(r+1)*n]...)
		if r == c.Rank() {
			copy(out[r*n:], chunk)
			continue
		}
		if err := c.Send(r, tagAlltoall, chunk); err != nil {
			return nil, err
		}
	}
	for i := 0; i < p-1; i++ {
		m, err := c.Recv(AnySource, tagAlltoall)
		if err != nil {
			return nil, err
		}
		chunk, ok := m.Data.([]int64)
		if !ok {
			return nil, errors.New("mp: alltoall payload type mismatch")
		}
		copy(out[m.Source*n:], chunk)
	}
	return out, nil
}

// BcastLinear is the naive one-by-one broadcast, kept as the ablation
// baseline against the binomial-tree Bcast.
func (c *Comm) BcastLinear(root int, data []int64) ([]int64, error) {
	if c.Rank() == root {
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	m, err := c.Recv(root, tagBcast)
	if err != nil {
		return nil, err
	}
	buf, ok := m.Data.([]int64)
	if !ok {
		return nil, errors.New("mp: bcast payload type mismatch")
	}
	return buf, nil
}
