// Package mp implements an MPI-flavoured message-passing library over
// goroutines and channels: a world of ranked processes with blocking
// Send/Recv (tag matching, wildcard source/tag), nonblocking Isend/Irecv
// with Wait, and the collective operations of the CS87 short labs —
// Barrier, Bcast, Scatter, Gather, Allgather, Reduce, Allreduce, Scan,
// and Alltoall — built from point-to-point messages using binomial-tree
// and ring algorithms, with per-rank traffic counters for the
// communication-cost discussions.
package mp

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// AnySource matches any sender in Recv.
const AnySource = -1

// AnyTag matches any tag in Recv.
const AnyTag = -1

// internal tags reserved by collectives (user tags must be >= 0 and are
// namespaced away from these).
const (
	tagBarrier = -100 - iota
	tagBcast
	tagScatter
	tagGather
	tagReduce
	tagScan
	tagAlltoall
	tagAllgather
)

// Message is one delivered message.
type Message struct {
	Source int
	Tag    int
	Data   interface{}
}

type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

func (mb *mailbox) take(src, tag int) Message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if m, ok := mb.match(src, tag); ok {
			return m
		}
		mb.cond.Wait()
	}
}

// match removes and returns the first matching message. Callers hold mu.
func (mb *mailbox) match(src, tag int) (Message, bool) {
	for i, m := range mb.pending {
		if (src == AnySource || m.Source == src) && (tag == AnyTag || m.Tag == tag) {
			mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// takeTimeout is take with a deadline; ok is false on timeout.
func (mb *mailbox) takeTimeout(src, tag int, d time.Duration) (Message, bool) {
	deadline := time.Now().Add(d)
	timedOut := false
	timer := time.AfterFunc(d, func() {
		mb.mu.Lock()
		timedOut = true
		mb.cond.Broadcast()
		mb.mu.Unlock()
	})
	defer timer.Stop()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if m, ok := mb.match(src, tag); ok {
			return m, true
		}
		if timedOut || !time.Now().Before(deadline) {
			return Message{}, false
		}
		mb.cond.Wait()
	}
}

// world is the shared communicator state.
type world struct {
	size   int
	boxes  []*mailbox
	stats  []Stats
	statMu sync.Mutex
}

// Stats counts a rank's traffic.
type Stats struct {
	Sent     int64
	Received int64
	Elems    int64 // int64 payload elements moved (for bandwidth modelling)
}

// Comm is one rank's handle on the world (an MPI communicator bound to a
// rank).
type Comm struct {
	w    *world
	rank int
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// Send delivers data to dst with a tag. It is buffered (asynchronous):
// the send completes immediately, like MPI_Send with ample buffering.
func (c *Comm) Send(dst, tag int, data interface{}) error {
	if dst < 0 || dst >= c.w.size {
		return fmt.Errorf("mp: send to invalid rank %d", dst)
	}
	c.w.boxes[dst].put(Message{Source: c.rank, Tag: tag, Data: data})
	c.w.statMu.Lock()
	c.w.stats[c.rank].Sent++
	c.w.stats[c.rank].Elems += payloadLen(data)
	c.w.statMu.Unlock()
	return nil
}

func payloadLen(data interface{}) int64 {
	switch v := data.(type) {
	case []int64:
		return int64(len(v))
	case []byte:
		return int64(len(v))
	case string:
		return int64(len(v))
	default:
		return 1
	}
}

// Recv blocks until a message matching src (or AnySource) and tag (or
// AnyTag) arrives.
func (c *Comm) Recv(src, tag int) (Message, error) {
	if src != AnySource && (src < 0 || src >= c.w.size) {
		return Message{}, fmt.Errorf("mp: recv from invalid rank %d", src)
	}
	m := c.w.boxes[c.rank].take(src, tag)
	c.w.statMu.Lock()
	c.w.stats[c.rank].Received++
	c.w.statMu.Unlock()
	return m, nil
}

// RecvTimeout is Recv with a deadline: ok is false when no matching
// message arrived within d. It models the failure-detection timeouts of
// the distributed-systems unit (MPI has no direct equivalent; real
// systems use it constantly).
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (Message, bool, error) {
	if src != AnySource && (src < 0 || src >= c.w.size) {
		return Message{}, false, fmt.Errorf("mp: recv from invalid rank %d", src)
	}
	m, ok := c.w.boxes[c.rank].takeTimeout(src, tag, d)
	if ok {
		c.w.statMu.Lock()
		c.w.stats[c.rank].Received++
		c.w.statMu.Unlock()
	}
	return m, ok, nil
}

// SendRecv performs a simultaneous exchange (MPI_Sendrecv): deadlock-free
// because sends are buffered.
func (c *Comm) SendRecv(dst, sendTag int, data interface{}, src, recvTag int) (Message, error) {
	if err := c.Send(dst, sendTag, data); err != nil {
		return Message{}, err
	}
	return c.Recv(src, recvTag)
}

// Request is a pending nonblocking operation.
type Request struct {
	done chan Message
	err  error
}

// Wait blocks until the operation completes.
func (r *Request) Wait() (Message, error) {
	if r.err != nil {
		return Message{}, r.err
	}
	m, ok := <-r.done
	if !ok {
		return Message{}, errors.New("mp: request already waited")
	}
	return m, nil
}

// Isend starts a nonblocking send (trivially complete under buffering).
func (c *Comm) Isend(dst, tag int, data interface{}) *Request {
	r := &Request{done: make(chan Message, 1)}
	r.err = c.Send(dst, tag, data)
	r.done <- Message{}
	close(r.done)
	return r
}

// Irecv starts a nonblocking receive; Wait returns the message.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan Message, 1)}
	go func() {
		m, err := c.Recv(src, tag)
		if err != nil {
			r.err = err
		}
		r.done <- m
		close(r.done)
	}()
	return r
}

// Stats returns this rank's traffic counters.
func (c *Comm) Stats() Stats {
	c.w.statMu.Lock()
	defer c.w.statMu.Unlock()
	return c.w.stats[c.rank]
}

// Run launches size ranks, each executing body with its own Comm, and
// waits for all to finish. A panic in any rank aborts with an error
// naming the rank; body errors are collected.
func Run(size int, body func(c *Comm) error) error {
	if size <= 0 {
		return errors.New("mp: world size must be positive")
	}
	w := &world{size: size, boxes: make([]*mailbox, size), stats: make([]Stats, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mp: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("mp: rank %d: %w", r, err)
		}
	}
	return nil
}
