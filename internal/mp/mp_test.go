package mp

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []int64{1, 2, 3})
		}
		m, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		data := m.Data.([]int64)
		if m.Source != 0 || m.Tag != 7 || len(data) != 3 || data[2] != 3 {
			t.Errorf("message: %+v", m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, "first")
			c.Send(1, 2, "second")
			return nil
		}
		// Receive tag 2 before tag 1: the mailbox must match by tag.
		m2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		m1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if m2.Data.(string) != "second" || m1.Data.(string) != "first" {
			t.Errorf("tag matching failed: %v %v", m1.Data, m2.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				m, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				seen[m.Source] = true
			}
			if len(seen) != 3 {
				t.Errorf("sources seen: %v", seen)
			}
			return nil
		}
		return c.Send(0, c.Rank()*10, []int64{int64(c.Rank())})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			t.Error("send to rank 5 should fail")
		}
		if _, err := c.Recv(9, 0); err == nil {
			t.Error("recv from rank 9 should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Error("world size 0 should fail")
	}
}

func TestPanicIsReported(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("rank bug")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1 panicked") {
		t.Errorf("err = %v", err)
	}
}

func TestIsendIrecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 0, []int64{42})
			_, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 0)
		m, err := req.Wait()
		if err != nil {
			return err
		}
		if m.Data.([]int64)[0] != 42 {
			t.Errorf("irecv got %v", m.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func add(a, b int64) int64 { return a + b }

func maxOp(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestBcastAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 13} {
		for root := 0; root < p; root += 2 {
			var got atomic.Int64
			err := Run(p, func(c *Comm) error {
				data := []int64{0}
				if c.Rank() == root {
					data = []int64{777}
				}
				out, err := c.Bcast(root, data)
				if err != nil {
					return err
				}
				if out[0] == 777 {
					got.Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
			if got.Load() != int64(p) {
				t.Errorf("p=%d root=%d: %d ranks got the value", p, root, got.Load())
			}
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 8} {
		err := Run(p, func(c *Comm) error {
			data := []int64{int64(c.Rank()), int64(c.Rank() * 10)}
			res, err := c.Reduce(0, data, add)
			if err != nil {
				return err
			}
			wantSum := int64(p * (p - 1) / 2)
			if c.Rank() == 0 {
				if res[0] != wantSum || res[1] != wantSum*10 {
					t.Errorf("p=%d reduce = %v, want [%d %d]", p, res, wantSum, wantSum*10)
				}
			} else if res != nil {
				t.Errorf("non-root got %v", res)
			}
			all, err := c.Allreduce([]int64{1}, add)
			if err != nil {
				return err
			}
			if all[0] != int64(p) {
				t.Errorf("allreduce = %v, want %d", all, p)
			}
			allMax, err := c.Allreduce([]int64{int64(c.Rank())}, maxOp)
			if err != nil {
				return err
			}
			if allMax[0] != int64(p-1) {
				t.Errorf("allreduce max = %v", allMax)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const p = 4
	err := Run(p, func(c *Comm) error {
		var src []int64
		if c.Rank() == 2 {
			src = make([]int64, p*3)
			for i := range src {
				src[i] = int64(i)
			}
		}
		part, err := c.Scatter(2, src)
		if err != nil {
			return err
		}
		if len(part) != 3 || part[0] != int64(c.Rank()*3) {
			t.Errorf("rank %d part = %v", c.Rank(), part)
		}
		back, err := c.Gather(2, part)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			for i, v := range back {
				if v != int64(i) {
					t.Errorf("gather[%d] = %d", i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterBadLength(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Scatter(0, make([]int64, 4)) // 4 % 3 != 0
			if err == nil {
				t.Error("indivisible scatter should error")
			}
			// Unblock the others with a valid scatter.
			_, err = c.Scatter(0, make([]int64, 6))
			return err
		}
		_, err := c.Scatter(0, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		err := Run(p, func(c *Comm) error {
			out, err := c.Allgather([]int64{int64(c.Rank() * 100), int64(c.Rank()*100 + 1)})
			if err != nil {
				return err
			}
			if len(out) != 2*p {
				t.Errorf("p=%d allgather len %d", p, len(out))
				return nil
			}
			for r := 0; r < p; r++ {
				if out[2*r] != int64(r*100) || out[2*r+1] != int64(r*100+1) {
					t.Errorf("p=%d rank %d: out=%v", p, c.Rank(), out)
					break
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestScanPrefix(t *testing.T) {
	const p = 6
	err := Run(p, func(c *Comm) error {
		res, err := c.Scan([]int64{int64(c.Rank() + 1)}, add)
		if err != nil {
			return err
		}
		want := int64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if res[0] != want {
			t.Errorf("rank %d scan = %d, want %d", c.Rank(), res[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallTranspose(t *testing.T) {
	const p = 4
	err := Run(p, func(c *Comm) error {
		// data[j] = rank*10 + j; after alltoall, out[j] = j*10 + rank.
		data := make([]int64, p)
		for j := range data {
			data[j] = int64(c.Rank()*10 + j)
		}
		out, err := c.Alltoall(data)
		if err != nil {
			return err
		}
		for j := range out {
			if out[j] != int64(j*10+c.Rank()) {
				t.Errorf("rank %d out[%d] = %d", c.Rank(), j, out[j])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const p = 5
	var before, after atomic.Int32
	err := Run(p, func(c *Comm) error {
		before.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		// Everyone must have incremented `before` by now.
		if before.Load() != p {
			t.Errorf("rank %d passed barrier with before=%d", c.Rank(), before.Load())
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != p {
		t.Errorf("after = %d", after.Load())
	}
}

func TestTreeBcastFewerSendsAtRoot(t *testing.T) {
	// Ablation: with p ranks, linear bcast sends p-1 messages from the
	// root; the binomial tree sends only ceil(log2 p) from the root.
	const p = 16
	var treeRootSends, linRootSends int64
	err := Run(p, func(c *Comm) error {
		if _, err := c.Bcast(0, []int64{1}); err != nil {
			return err
		}
		if c.Rank() == 0 {
			treeRootSends = c.Stats().Sent
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = Run(p, func(c *Comm) error {
		if _, err := c.BcastLinear(0, []int64{1}); err != nil {
			return err
		}
		if c.Rank() == 0 {
			linRootSends = c.Stats().Sent
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if treeRootSends != 4 { // log2(16)
		t.Errorf("tree root sends = %d, want 4", treeRootSends)
	}
	if linRootSends != p-1 {
		t.Errorf("linear root sends = %d, want %d", linRootSends, p-1)
	}
}

func TestPingPongStats(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const rounds = 10
		other := 1 - c.Rank()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				if err := c.Send(other, 0, []int64{int64(i)}); err != nil {
					return err
				}
				if _, err := c.Recv(other, 0); err != nil {
					return err
				}
			} else {
				m, err := c.Recv(other, 0)
				if err != nil {
					return err
				}
				if err := c.Send(other, 0, m.Data); err != nil {
					return err
				}
			}
		}
		st := c.Stats()
		if st.Sent != rounds || st.Received != rounds {
			t.Errorf("rank %d stats: %+v", c.Rank(), st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeout(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Nothing arrives: times out.
			_, ok, err := c.RecvTimeout(1, 5, 50*time.Millisecond)
			if err != nil {
				return err
			}
			if ok {
				t.Error("timeout recv should report !ok")
			}
			// Tell rank 1 to send, then receive within the window.
			if err := c.Send(1, 1, "go"); err != nil {
				return err
			}
			m, ok, err := c.RecvTimeout(1, 2, 2*time.Second)
			if err != nil {
				return err
			}
			if !ok || m.Data.(string) != "data" {
				t.Errorf("late recv: ok=%v data=%v", ok, m.Data)
			}
			// Invalid rank errors.
			if _, _, err := c.RecvTimeout(9, 0, time.Millisecond); err == nil {
				t.Error("invalid source should error")
			}
			return nil
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		return c.Send(0, 2, "data")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestDoubleWait(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 0, "x")
			if _, err := req.Wait(); err != nil {
				return err
			}
			if _, err := req.Wait(); err == nil {
				t.Error("second Wait should error")
			}
			return nil
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveErrorPaths(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if _, err := c.Bcast(-1, nil); err == nil {
			t.Error("bad bcast root should error")
		}
		if _, err := c.Reduce(5, nil, add); err == nil {
			t.Error("bad reduce root should error")
		}
		if _, err := c.Scatter(7, nil); err == nil {
			t.Error("bad scatter root should error")
		}
		if _, err := c.Gather(-2, nil); err == nil {
			t.Error("bad gather root should error")
		}
		if _, err := c.Alltoall(make([]int64, 3)); err == nil {
			t.Error("indivisible alltoall should error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPayloadAccounting(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []int64{1, 2, 3})
			c.Send(1, 0, []byte("abcd"))
			c.Send(1, 0, "hello")
			c.Send(1, 0, 42)
			st := c.Stats()
			if st.Elems != 3+4+5+1 {
				t.Errorf("elems = %d, want 13", st.Elems)
			}
			return nil
		}
		for i := 0; i < 4; i++ {
			if _, err := c.Recv(0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastLinearMatchesTree(t *testing.T) {
	for _, p := range []int{2, 5, 9} {
		var got atomic.Int64
		err := Run(p, func(c *Comm) error {
			data := []int64{0}
			if c.Rank() == 0 {
				data = []int64{55}
			}
			out, err := c.BcastLinear(0, data)
			if err != nil {
				return err
			}
			if out[0] == 55 {
				got.Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if got.Load() != int64(p) {
			t.Errorf("p=%d: linear bcast reached %d ranks", p, got.Load())
		}
	}
}
