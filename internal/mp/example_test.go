package mp_test

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mp"
)

// The canonical MPI hello: every rank reports in; rank 0 gathers.
func Example() {
	var mu sync.Mutex
	var lines []string
	err := mp.Run(4, func(c *mp.Comm) error {
		sum, err := c.Allreduce([]int64{int64(c.Rank())}, func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		mu.Lock()
		lines = append(lines, fmt.Sprintf("rank %d of %d sees sum %d", c.Rank(), c.Size(), sum[0]))
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// rank 0 of 4 sees sum 6
	// rank 1 of 4 sees sum 6
	// rank 2 of 4 sees sum 6
	// rank 3 of 4 sees sum 6
}

// Scatter splits root data into per-rank chunks; Gather reassembles it.
func ExampleComm_Scatter() {
	var got []int64
	err := mp.Run(3, func(c *mp.Comm) error {
		var data []int64
		if c.Rank() == 0 {
			data = []int64{10, 11, 20, 21, 30, 31}
		}
		part, err := c.Scatter(0, data)
		if err != nil {
			return err
		}
		back, err := c.Gather(0, part)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			got = back
		}
		return nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(got)
	// Output: [10 11 20 21 30 31]
}
