// Package workload generates deterministic, seeded key-value workloads
// for the replicated cluster benches: zipfian or uniform key
// popularity, read/write/delete mixes, and bounded-range value sizes.
// It is the YCSB-shaped counterpart of the chaos harness's op streams —
// the same split-PRNG idiom (one seed, one independent generator per
// worker) so any run replays from its seed, but aimed at performance
// study instead of fault injection: skewed traffic is what makes a
// hot-key cache and per-node admission control measurable at all.
//
// The open-loop half lives in pacer.go: a per-worker Pacer dispatches
// ops at a fixed target rate on an arrival schedule that does not slow
// down when the system does, with a LagGauge recording how far dispatch
// fell behind — the difference between measuring a system and letting
// the system throttle its own load generator.
package workload

import (
	"fmt"
	"math/rand"
)

// Dist selects the key-popularity distribution.
type Dist int

const (
	// Uniform draws every key with equal probability.
	Uniform Dist = iota
	// Zipfian draws keys under a zipfian law with exponent Theta: key 0
	// is the hottest, and with theta 0.99 over a few hundred keys the
	// top handful carries most of the traffic.
	Zipfian
)

func (d Dist) String() string {
	if d == Zipfian {
		return "zipfian"
	}
	return "uniform"
}

// ParseDist maps the -workload flag values of clusterbench.
func ParseDist(s string) (Dist, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "zipfian":
		return Zipfian, nil
	}
	return Uniform, fmt.Errorf("workload: unknown distribution %q (want uniform or zipfian)", s)
}

// OpKind labels one generated operation.
type OpKind int

const (
	OpRead OpKind = iota
	OpWrite
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	}
	return "read"
}

// Op is one generated operation. Value is set only for writes.
type Op struct {
	Kind  OpKind
	Key   string
	Value string
}

// Config parameterizes a Workload. Zero fields take the defaults noted
// inline.
type Config struct {
	// Keys is the keyspace size (default 512). Keys are named
	// "<KeyPrefix><i>"; under Zipfian, lower i is hotter.
	Keys int
	// Dist selects key popularity (default Uniform).
	Dist Dist
	// Theta is the zipfian exponent in (0,1) (default 0.99, the YCSB
	// hot-workload standard). Ignored under Uniform.
	Theta float64
	// ReadFrac and DeleteFrac set the op mix; writes take the rest
	// (default 0.95 reads, 0 deletes — YCSB workload B shape, shifted
	// read-heavy because that is what a read cache can help).
	ReadFrac   float64
	DeleteFrac float64
	// ValueMin and ValueMax bound the write value size in bytes, drawn
	// uniformly per write (default both 64).
	ValueMin int
	ValueMax int
	// KeyPrefix namespaces the keyspace (default "wk").
	KeyPrefix string
	// Seed drives every per-worker generator (default 1). The same
	// (Config, Seed, worker) always yields the same op stream.
	Seed int64
}

// Workload is the immutable, shared half of a generated workload: the
// key table and the precomputed distribution. Per-worker mutable state
// (the PRNG) lives in the Gens it hands out, so workers never contend.
type Workload struct {
	cfg  Config
	keys []string
	zipf *Zipf // nil under Uniform
}

// New validates cfg, applies defaults, and precomputes the key table
// and (for Zipfian) the sampler constants.
func New(cfg Config) (*Workload, error) {
	if cfg.Keys <= 0 {
		cfg.Keys = 512
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.ReadFrac == 0 && cfg.DeleteFrac == 0 {
		cfg.ReadFrac = 0.95
	}
	if cfg.ReadFrac < 0 || cfg.DeleteFrac < 0 || cfg.ReadFrac+cfg.DeleteFrac > 1 {
		return nil, fmt.Errorf("workload: bad mix read=%g delete=%g (each >= 0, sum <= 1)",
			cfg.ReadFrac, cfg.DeleteFrac)
	}
	if cfg.ValueMin <= 0 {
		cfg.ValueMin = 64
	}
	if cfg.ValueMax < cfg.ValueMin {
		cfg.ValueMax = cfg.ValueMin
	}
	if cfg.KeyPrefix == "" {
		cfg.KeyPrefix = "wk"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	w := &Workload{cfg: cfg}
	w.keys = make([]string, cfg.Keys)
	for i := range w.keys {
		w.keys[i] = fmt.Sprintf("%s%04d", cfg.KeyPrefix, i)
	}
	if cfg.Dist == Zipfian {
		z, err := NewZipf(cfg.Keys, cfg.Theta)
		if err != nil {
			return nil, err
		}
		w.zipf = z
	}
	return w, nil
}

// Keys returns the full key table (shared; do not mutate) — what a
// bench preloads before measuring.
func (w *Workload) Keys() []string { return w.keys }

// HotShare predicts the traffic fraction of the k hottest keys (k/Keys
// under Uniform).
func (w *Workload) HotShare(k int) float64 {
	if w.zipf != nil {
		return w.zipf.Share(k)
	}
	if k >= len(w.keys) {
		return 1
	}
	return float64(k) / float64(len(w.keys))
}

// Gen returns worker w's deterministic op generator. The split-PRNG
// seeding matches the chaos harness's opStream idiom: one generator per
// worker, derived from (Seed, worker) with distinct odd multipliers, so
// workers draw independent streams and the whole run replays from one
// seed.
func (wl *Workload) Gen(worker int) *Gen {
	return &Gen{
		wl:  wl,
		rng: rand.New(rand.NewSource(wl.cfg.Seed*1000003 + int64(worker)*7919 + 1)),
	}
}

// Gen is one worker's private op stream. Not safe for concurrent use —
// each worker owns its own.
type Gen struct {
	wl  *Workload
	rng *rand.Rand
	n   int
}

// valueAlphabet fills generated values; letters only, so values stay
// legal on the text protocol.
const valueAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// Next yields the worker's next operation.
func (g *Gen) Next() Op {
	cfg := g.wl.cfg
	var op Op
	if g.wl.zipf != nil {
		op.Key = g.wl.keys[g.wl.zipf.Sample(g.rng.Float64())]
	} else {
		op.Key = g.wl.keys[g.rng.Intn(len(g.wl.keys))]
	}
	switch r := g.rng.Float64(); {
	case r < cfg.ReadFrac:
		op.Kind = OpRead
	case r < cfg.ReadFrac+cfg.DeleteFrac:
		op.Kind = OpDelete
	default:
		op.Kind = OpWrite
		size := cfg.ValueMin
		if cfg.ValueMax > cfg.ValueMin {
			size += g.rng.Intn(cfg.ValueMax - cfg.ValueMin + 1)
		}
		b := make([]byte, size)
		for i := range b {
			b[i] = valueAlphabet[g.rng.Intn(len(valueAlphabet))]
		}
		op.Value = string(b)
	}
	g.n++
	return op
}
