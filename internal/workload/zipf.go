package workload

import (
	"fmt"
	"math"
)

// Zipf maps uniform [0,1) draws to key ranks under a zipfian popularity
// law with exponent theta in (0,1) — the YCSB parameterization (Gray et
// al., "Quickly Generating Billion-Record Synthetic Databases"), where
// rank i is drawn with probability proportional to 1/(i+1)^theta.
// YCSB's canonical hot workloads use theta = 0.99, which the standard
// library generator cannot produce (math/rand.Zipf requires s > 1), so
// the constants are precomputed here from the closed forms.
//
// Sample is a pure function of its uniform input: callers own the
// randomness, so a seeded stream of uniforms yields a deterministic
// stream of ranks — the property the chaos harness's replayable
// schedules depend on.
type Zipf struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	zeta2 float64
	eta   float64
}

// NewZipf precomputes the sampler for n ranks and exponent theta.
func NewZipf(n int, theta float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf needs n >= 1, have %d", n)
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("workload: zipf theta must be in (0,1), have %g", theta)
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z, nil
}

// zeta is the truncated zeta sum Σ_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Sample maps one uniform draw u in [0,1) to a rank in [0, n): rank 0
// is the hottest key, rank 1 the next, and so on down the power law.
func (z *Zipf) Sample(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r < 0 {
		r = 0
	}
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// Share returns the probability mass of the top k ranks — the predicted
// fraction of traffic landing on the k hottest keys, which is what
// sizing a hot-key cache against a theta needs.
func (z *Zipf) Share(k int) float64 {
	if k >= z.n {
		return 1
	}
	if k < 1 {
		return 0
	}
	return zeta(k, z.theta) / z.zetan
}
