package workload

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestWorkload_Deterministic(t *testing.T) {
	cfg := Config{Keys: 64, Dist: Zipfian, Theta: 0.99, ReadFrac: 0.8, DeleteFrac: 0.05, Seed: 7}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		ga, gb := a.Gen(w), b.Gen(w)
		for i := 0; i < 500; i++ {
			oa, ob := ga.Next(), gb.Next()
			if oa != ob {
				t.Fatalf("worker %d op %d diverged: %+v vs %+v", w, i, oa, ob)
			}
		}
	}
	// Distinct workers must draw distinct streams.
	g0, g1 := a.Gen(0), a.Gen(1)
	same := 0
	for i := 0; i < 100; i++ {
		if g0.Next() == g1.Next() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("workers 0 and 1 drew identical streams")
	}
}

func TestWorkload_MixFractions(t *testing.T) {
	wl, err := New(Config{Keys: 32, ReadFrac: 0.7, DeleteFrac: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var reads, writes, dels int
	g := wl.Gen(0)
	for i := 0; i < n; i++ {
		switch op := g.Next(); op.Kind {
		case OpRead:
			reads++
		case OpWrite:
			writes++
			if len(op.Value) != 64 {
				t.Fatalf("default value size = %d, want 64", len(op.Value))
			}
		case OpDelete:
			dels++
		}
	}
	for _, c := range []struct {
		name string
		got  int
		want float64
	}{{"reads", reads, 0.7}, {"writes", writes, 0.2}, {"deletes", dels, 0.1}} {
		frac := float64(c.got) / n
		if math.Abs(frac-c.want) > 0.02 {
			t.Errorf("%s fraction = %.3f, want ~%.2f", c.name, frac, c.want)
		}
	}
}

func TestWorkload_ZipfSkew(t *testing.T) {
	wl, err := New(Config{Keys: 512, Dist: Zipfian, Theta: 0.99, ReadFrac: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	counts := map[string]int{}
	g := wl.Gen(0)
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// The hottest key must dominate, and the empirical top-16 share must
	// track the analytic prediction within a few points.
	hottest := wl.Keys()[0]
	if frac := float64(counts[hottest]) / n; frac < 0.10 {
		t.Errorf("hottest key drew %.3f of traffic, want >= 0.10 under theta=0.99", frac)
	}
	top16 := 0
	for _, k := range wl.Keys()[:16] {
		top16 += counts[k]
	}
	want := wl.HotShare(16)
	if got := float64(top16) / n; math.Abs(got-want) > 0.03 {
		t.Errorf("top-16 share = %.3f, HotShare predicts %.3f", got, want)
	}
	// Uniform must not skew.
	uni, err := New(Config{Keys: 512, Dist: Uniform, ReadFrac: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ucounts := map[string]int{}
	ug := uni.Gen(0)
	for i := 0; i < n; i++ {
		ucounts[ug.Next().Key]++
	}
	if frac := float64(ucounts[uni.Keys()[0]]) / n; frac > 0.01 {
		t.Errorf("uniform hottest key drew %.3f of traffic, want ~1/512", frac)
	}
}

func TestZipf_SampleBoundsAndValidation(t *testing.T) {
	z, err := NewZipf(8, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, 0.001, 0.25, 0.5, 0.75, 0.999999} {
		if r := z.Sample(u); r < 0 || r >= 8 {
			t.Errorf("Sample(%g) = %d out of [0,8)", u, r)
		}
	}
	if z.Sample(0) != 0 {
		t.Error("u=0 must map to rank 0 (the hottest)")
	}
	if s := z.Share(8); s != 1 {
		t.Errorf("Share(n) = %g, want 1", s)
	}
	for _, bad := range []struct {
		n     int
		theta float64
	}{{0, 0.99}, {8, 0}, {8, 1}, {8, -1}, {8, 1.5}} {
		if _, err := NewZipf(bad.n, bad.theta); err == nil {
			t.Errorf("NewZipf(%d, %g) accepted invalid parameters", bad.n, bad.theta)
		}
	}
}

func TestWorkload_ConfigValidation(t *testing.T) {
	if _, err := New(Config{ReadFrac: 0.8, DeleteFrac: 0.3}); err == nil {
		t.Error("mix summing past 1 accepted")
	}
	if _, err := New(Config{ReadFrac: -0.1}); err == nil {
		t.Error("negative read fraction accepted")
	}
	if _, err := ParseDist("pareto"); err == nil {
		t.Error("ParseDist accepted an unknown distribution")
	}
	for s, want := range map[string]Dist{"uniform": Uniform, "zipfian": Zipfian} {
		d, err := ParseDist(s)
		if err != nil || d != want {
			t.Errorf("ParseDist(%q) = %v, %v", s, d, err)
		}
	}
}

func TestPacer_PacesAndRecordsLag(t *testing.T) {
	gauge := NewLagGauge()
	p, err := NewPacer(200, gauge) // 5ms slots
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := p.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// 10 dispatches at 5ms slots: the last is due at +45ms. Generous
	// upper bound for slow CI machines; the lower bound is the real
	// assertion (a pacer that never waits is broken).
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Errorf("10 dispatches at 200qps took %v, want >= ~45ms", el)
	}
	if s := gauge.Snapshot(); s.Dispatches != 10 {
		t.Errorf("gauge saw %d dispatches, want 10", s.Dispatches)
	}

	// An overrunning op makes the schedule slip; the deficit must show
	// up as lag rather than stretching the schedule.
	lag := NewLagGauge()
	p2, err := NewPacer(1000, lag)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // overrun ~20 slots
	if err := p2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if s := lag.Snapshot(); s.Max < 10*time.Millisecond {
		t.Errorf("max lag = %v after a 20ms overrun of 1ms slots", s.Max)
	}

	// Cancellation interrupts a pending wait.
	p3, err := NewPacer(1, nil) // 1s slots: the second Wait must block
	if err != nil {
		t.Fatal(err)
	}
	if err := p3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	begin := time.Now()
	if err := p3.Wait(cctx); err == nil {
		t.Error("canceled Wait returned nil")
	}
	if el := time.Since(begin); el > 500*time.Millisecond {
		t.Errorf("canceled Wait blocked %v", el)
	}

	if _, err := NewPacer(0, nil); err == nil {
		t.Error("NewPacer(0) accepted")
	}
}
