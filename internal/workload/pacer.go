package workload

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Pacer dispatches one worker's operations on a fixed-rate open-loop
// arrival schedule: the i-th op is due at start + i*interval no matter
// how long earlier ops took. When the system under test slows down the
// schedule does NOT stretch — dispatch falls behind and the deficit is
// recorded on the LagGauge. That is the point of open-loop load: a
// closed-loop worker waits for each response before issuing the next
// request, so an overloaded server silently throttles its own load
// generator and the measured latency stays flat; the open-loop schedule
// keeps offering the configured rate, which is what exposes overload
// (and what admission control is measured against). Not safe for
// concurrent use — each worker owns its own Pacer.
type Pacer struct {
	interval time.Duration
	next     time.Time
	gauge    *LagGauge
}

// NewPacer paces one worker at qps operations per second, reporting
// scheduler lag to gauge (which may be shared across workers; nil
// discards lag).
func NewPacer(qps float64, gauge *LagGauge) (*Pacer, error) {
	if qps <= 0 {
		return nil, fmt.Errorf("workload: pacer needs qps > 0, have %g", qps)
	}
	return &Pacer{interval: time.Duration(float64(time.Second) / qps), gauge: gauge}, nil
}

// Wait blocks until the next scheduled dispatch time (or returns
// ctx.Err() if the run is over). If the schedule is already in the
// past — the previous op overran its slot — Wait returns immediately
// and records the deficit as lag.
func (p *Pacer) Wait(ctx context.Context) error {
	now := time.Now()
	if p.next.IsZero() {
		p.next = now
	}
	if d := p.next.Sub(now); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
		p.gauge.observe(0)
	} else {
		p.gauge.observe(-d)
	}
	p.next = p.next.Add(p.interval)
	return nil
}

// LagGauge aggregates open-loop scheduler lag in bounded memory: count,
// sum, and max rather than per-op samples, so an arbitrarily long run
// costs a few words. Lag is how late an op was dispatched relative to
// its slot on the arrival schedule; sustained growth means the offered
// rate exceeds what the load generator (not the server) can issue, and
// the measured throughput should be read as an under-offer. Safe for
// concurrent use by many workers.
type LagGauge struct {
	mu  sync.Mutex
	n   int64
	sum time.Duration
	max time.Duration
}

// NewLagGauge returns an empty gauge.
func NewLagGauge() *LagGauge { return &LagGauge{} }

func (g *LagGauge) observe(lag time.Duration) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.n++
	g.sum += lag
	if lag > g.max {
		g.max = lag
	}
	g.mu.Unlock()
}

// LagStats is one gauge snapshot.
type LagStats struct {
	Dispatches int64
	Mean       time.Duration
	Max        time.Duration
}

// Snapshot returns the current aggregate lag.
func (g *LagGauge) Snapshot() LagStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := LagStats{Dispatches: g.n, Max: g.max}
	if g.n > 0 {
		s.Mean = g.sum / time.Duration(g.n)
	}
	return s
}
