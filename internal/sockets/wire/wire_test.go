// Decoder tests in the layered-codec style of the IEC-61850 BER/COTP
// stacks: exhaustive tables over truncations at every field boundary,
// oversized length headers, unknown tags, and structural violations —
// every way a peer can hand the decoder garbage, without a socket in
// the test.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// req is shorthand for an encoded request payload.
func req(t *testing.T, r *Request) []byte {
	t.Helper()
	return AppendRequest(nil, r)
}

func TestDecodeRequestRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		in   *Request
	}{
		{"ping", &Request{Verb: VerbPing, ID: 1}},
		{"count", &Request{Verb: VerbCount, ID: 7}},
		{"keys", &Request{Verb: VerbKeys, ID: 1 << 40}},
		{"get", &Request{Verb: VerbGet, ID: 2, Key: "k"}},
		{"del", &Request{Verb: VerbDel, ID: 3, Key: "a-long-key-name"}},
		{"set", &Request{Verb: VerbSet, ID: 4, Key: "k", Value: []byte("v")}},
		{"set empty value", &Request{Verb: VerbSet, ID: 5, Key: "k", Value: []byte{}}},
		{"set binary value", &Request{Verb: VerbSet, ID: 6, Key: "k", Value: []byte("a b\r\n\x00c")}},
		{"mdel", &Request{Verb: VerbMDel, ID: 8, Keys: []string{"a", "b", "c"}}},
		{"mget", &Request{Verb: VerbMGet, ID: 9, Keys: []string{"x", "y"}}},
		{"mput", &Request{Verb: VerbMPut, ID: 10, Pairs: []KV{{"a", []byte("1")}, {"b", []byte("2 2")}}}},
		{"setv", &Request{Verb: VerbSetV, ID: 11, Key: "k", Value: []byte("n0:1@5 v x")}},
		{"tree", &Request{Verb: VerbTree, ID: 12, Spans: []Span{{0, 4096}, {128, 256}}}},
		{"scan", &Request{Verb: VerbScan, ID: 13, Spans: []Span{{7, 8}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc := AppendRequest(nil, tt.in)
			got, err := DecodeRequest(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			// Normalize nil-vs-empty so reflect.DeepEqual compares shape,
			// not allocation history.
			if tt.in.Value != nil && len(tt.in.Value) == 0 {
				tt.in.Value = []byte{}
				if got.Value == nil {
					got.Value = []byte{}
				}
			}
			if !reflect.DeepEqual(got, tt.in) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tt.in)
			}
		})
	}
}

// TestDecodeRequestTruncatedEveryBoundary re-encodes a PDU of every
// shape and asserts that every strict prefix fails with ErrTruncated or
// ErrOversize — never a panic, never silent success.
func TestDecodeRequestTruncatedEveryBoundary(t *testing.T) {
	shapes := []*Request{
		{Verb: VerbPing, ID: 300}, // multi-byte uvarint ID
		{Verb: VerbGet, ID: 1, Key: "key"},
		{Verb: VerbSet, ID: 1, Key: "key", Value: []byte("value")},
		{Verb: VerbMDel, ID: 1, Keys: []string{"aa", "bb"}},
		{Verb: VerbMGet, ID: 1, Keys: []string{"aa", "bb"}},
		{Verb: VerbMPut, ID: 1, Pairs: []KV{{"k1", []byte("v1")}, {"k2", []byte("v2")}}},
		{Verb: VerbSetV, ID: 1, Key: "key", Value: []byte("value")},
		{Verb: VerbTree, ID: 1, Spans: []Span{{300, 4096}}},
		{Verb: VerbScan, ID: 1, Spans: []Span{{0, 1}, {9, 300}}},
	}
	for _, shape := range shapes {
		enc := AppendRequest(nil, shape)
		for cut := 0; cut < len(enc); cut++ {
			_, err := DecodeRequest(enc[:cut])
			if err == nil {
				t.Errorf("%s: prefix of %d/%d bytes decoded cleanly", verbName(shape.Verb), cut, len(enc))
				continue
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversize) {
				t.Errorf("%s: prefix %d/%d: got %v, want ErrTruncated/ErrOversize", verbName(shape.Verb), cut, len(enc), err)
			}
		}
	}
}

func TestDecodeResponseTruncatedEveryBoundary(t *testing.T) {
	shapes := []*Response{
		{Tag: RespOK, ID: 300},
		{Tag: RespValue, ID: 1, Value: []byte("value")},
		{Tag: RespCount, ID: 1, N: 1 << 20},
		{Tag: RespKeys, ID: 1, Keys: []string{"aa", "bb"}},
		{Tag: RespMulti, ID: 1, Found: []bool{true, false}, Values: [][]byte{[]byte("v"), nil}},
		{Tag: RespOverload, ID: 500},
		{Tag: RespHashes, ID: 1, Hashes: []uint64{0xdeadbeef, 1 << 63}},
		{Tag: RespScan, ID: 1, Scan: []ScanEntry{{"k1", 7}, {"k2", 1 << 40}}},
		{Tag: RespErr, ID: 1, Err: "boom"},
	}
	for _, shape := range shapes {
		enc := AppendResponse(nil, shape)
		for cut := 0; cut < len(enc); cut++ {
			_, err := DecodeResponse(enc[:cut])
			if err == nil {
				t.Errorf("tag 0x%02x: prefix of %d/%d bytes decoded cleanly", shape.Tag, cut, len(enc))
				continue
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversize) {
				t.Errorf("tag 0x%02x: prefix %d/%d: got %v, want ErrTruncated/ErrOversize", shape.Tag, cut, len(enc), err)
			}
		}
	}
}

func TestDecodeRequestMalformed(t *testing.T) {
	// A SET whose value-length uvarint claims more bytes than exist.
	overclaim := func() []byte {
		p := []byte{VerbSet, 1}
		p = binary.AppendUvarint(p, 1)
		p = append(p, 'k')
		p = binary.AppendUvarint(p, 1000) // value "length"
		return append(p, 'v')             // ...but one byte follows
	}()
	// A SET whose value length exceeds the frame cap outright.
	hugeClaim := func() []byte {
		p := []byte{VerbSet, 1}
		p = binary.AppendUvarint(p, 1)
		p = append(p, 'k')
		return binary.AppendUvarint(p, MaxFrame+1)
	}()
	// An MDEL whose count no payload of this size could hold.
	hugeCount := func() []byte {
		p := []byte{VerbMDel, 1}
		return binary.AppendUvarint(p, 1<<40)
	}()
	// A 10-byte uvarint with the continuation bit never clearing
	// overflows 64 bits; binary.Uvarint reports n < 0.
	badVarint := append([]byte{VerbPing},
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)

	tests := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty payload", nil, ErrTruncated},
		{"verb only", []byte{VerbGet}, ErrTruncated},
		{"unknown verb", req(t, &Request{Verb: 0x7E, ID: 1}), ErrUnknownVerb},
		{"response tag as verb", req(t, &Request{Verb: RespOK, ID: 1}), ErrUnknownVerb},
		{"zero-length key GET", []byte{VerbGet, 1, 0}, ErrZeroKey},
		{"zero-length key in MDEL", []byte{VerbMDel, 1, 1, 0}, ErrZeroKey},
		{"value length overclaims", overclaim, ErrOversize},
		{"value length above frame cap", hugeClaim, ErrOversize},
		{"MDEL count above payload", hugeCount, ErrOversize},
		{"overflowing uvarint ID", badVarint, ErrTruncated},
		{"non-minimal varint ID", []byte{VerbPing, 0x80, 0x00}, ErrMalformed},
		{"trailing bytes", append(req(t, &Request{Verb: VerbPing, ID: 1}), 0xAB), ErrTrailing},
		{"empty span", []byte{VerbTree, 1, 1, 5, 5}, ErrMalformed},
		{"inverted span", []byte{VerbScan, 1, 1, 9, 3}, ErrMalformed},
		{"span count above payload", append([]byte{VerbTree, 1}, 0xFF, 0xFF, 0x03), ErrOversize},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := DecodeRequest(tt.in)
			if !errors.Is(err, tt.want) {
				t.Errorf("DecodeRequest(%x) = %v, want %v", tt.in, err, tt.want)
			}
		})
	}
}

// TestDecodeRequestErrorKeepsID: a server must be able to address an
// error response even for a request that fails mid-decode — the verb
// and correlation ID survive the failure.
func TestDecodeRequestErrorKeepsID(t *testing.T) {
	enc := req(t, &Request{Verb: VerbSet, ID: 42, Key: "k", Value: []byte("v")})
	r, err := DecodeRequest(enc[:len(enc)-1])
	if err == nil {
		t.Fatal("truncated SET decoded cleanly")
	}
	if r == nil || r.ID != 42 || r.Verb != VerbSet {
		t.Fatalf("partial decode lost addressing: %+v", r)
	}
}

func TestDecodeResponseMalformed(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"unknown tag", []byte{0x50, 1}, ErrUnknownTag},
		{"verb as tag", []byte{VerbSet, 1}, ErrUnknownTag},
		{"multi count above payload", append([]byte{RespMulti, 1}, 0xFF, 0xFF, 0x03), ErrOversize},
		{"multi found flag not 0/1", []byte{RespMulti, 1, 1, 0x02, 0x00}, ErrMalformed},
		{"trailing bytes", append(AppendResponse(nil, &Response{Tag: RespOK, ID: 1}), 0), ErrTrailing},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := DecodeResponse(tt.in)
			if !errors.Is(err, tt.want) {
				t.Errorf("DecodeResponse(%x) = %v, want %v", tt.in, err, tt.want)
			}
		})
	}
}

// FuzzDecodeFrame throws arbitrary payloads at both decoders. The
// invariants: never panic, never allocate past the frame cap, and any
// payload that decodes cleanly must re-encode to the exact input bytes
// (the codec is canonical — one wire form per PDU).
func FuzzDecodeFrame(f *testing.F) {
	seeds := [][]byte{
		AppendRequest(nil, &Request{Verb: VerbPing, ID: 1}),
		AppendRequest(nil, &Request{Verb: VerbSet, ID: 2, Key: "key", Value: []byte("value with spaces\r\n")}),
		AppendRequest(nil, &Request{Verb: VerbGet, ID: 300, Key: "k"}),
		AppendRequest(nil, &Request{Verb: VerbMDel, ID: 4, Keys: []string{"a", "b"}}),
		AppendRequest(nil, &Request{Verb: VerbMGet, ID: 5, Keys: []string{"x"}}),
		AppendRequest(nil, &Request{Verb: VerbMPut, ID: 6, Pairs: []KV{{"k", []byte("v")}}}),
		AppendResponse(nil, &Response{Tag: RespOK, ID: 1}),
		AppendResponse(nil, &Response{Tag: RespValue, ID: 2, Value: []byte("v")}),
		AppendResponse(nil, &Response{Tag: RespKeys, ID: 3, Keys: []string{"a", "b"}}),
		AppendResponse(nil, &Response{Tag: RespMulti, ID: 4, Found: []bool{true}, Values: [][]byte{[]byte("v")}}),
		AppendResponse(nil, &Response{Tag: RespErr, ID: 5, Err: "usage"}),
		AppendResponse(nil, &Response{Tag: RespOverload, ID: 6}),
		AppendRequest(nil, &Request{Verb: VerbSetV, ID: 7, Key: "k", Value: []byte("n0:1@5 v x")}),
		AppendRequest(nil, &Request{Verb: VerbTree, ID: 8, Spans: []Span{{0, 4096}}}),
		AppendRequest(nil, &Request{Verb: VerbScan, ID: 9, Spans: []Span{{5, 6}}}),
		AppendResponse(nil, &Response{Tag: RespHashes, ID: 10, Hashes: []uint64{42}}),
		AppendResponse(nil, &Response{Tag: RespScan, ID: 11, Scan: []ScanEntry{{"k", 9}}}),
		{VerbSet, 0x01, 0x00},
		{0xFF, 0xFF, 0xFF},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, p []byte) {
		if r, err := DecodeRequest(p); err == nil {
			if enc := AppendRequest(nil, r); !bytes.Equal(enc, p) {
				t.Fatalf("request not canonical: %x decodes to %+v which re-encodes to %x", p, r, enc)
			}
		}
		if r, err := DecodeResponse(p); err == nil {
			if enc := AppendResponse(nil, r); !bytes.Equal(enc, p) {
				t.Fatalf("response not canonical: %x decodes to %+v which re-encodes to %x", p, r, enc)
			}
		}
	})
}
