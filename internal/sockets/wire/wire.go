// Package wire is the binary KV wire protocol: tagged request/response
// PDUs carried inside the same u32-length-prefixed frames as the text
// protocol, layered the way the BER/COTP codecs in the IEC-61850 stacks
// are — a pure, allocation-light encode/decode layer with no transport
// state, so every malformed input is testable (and fuzzable) without a
// socket in sight.
//
// # Negotiation
//
// The first byte a client sends on a fresh connection selects the
// protocol. Text-protocol frames always begin with the high byte of a
// u32 big-endian length, and since MaxFrame is far below 2^24 that byte
// is always 0x00 — so any non-zero magic is unambiguous. A binary
// client opens with Magic (0xB1), then 8 bytes of client ID (big
// endian, used to key server-side retry dedupe), then length-prefixed
// frames. A text client just starts writing frames; the server peeks
// one byte and serves whichever protocol it sees.
//
// # Frame payload layout
//
// Every payload starts with a tag byte and a uvarint correlation ID;
// what follows depends on the tag. Strings and byte fields are uvarint
// length + raw bytes ("bytes" below); counted sequences are a uvarint
// element count followed by that many elements.
//
//	request  := verb:1 id:uvarint body
//	  VerbPing | VerbCount | VerbKeys:  (empty body)
//	  VerbGet | VerbDel:                key:bytes
//	  VerbSet:                          key:bytes value:bytes
//	  VerbMDel | VerbMGet:              n:uvarint key:bytes ×n
//	  VerbMPut:                         n:uvarint (key:bytes value:bytes) ×n
//	  VerbSetV:                         key:bytes value:bytes
//	  VerbTree | VerbScan:              n:uvarint (lo:uvarint hi:uvarint) ×n
//	  VerbSyncWAL:                      mode:1 cursor:uvarint chunk:bytes
//
//	response := tag:1 id:uvarint body
//	  RespOK | RespNotFound | RespOverload:  (empty body)
//	  RespValue:              value:bytes
//	  RespCount:              n:uvarint            (COUNT, MDEL's deleted-count, SETV's outcome)
//	  RespKeys:               n:uvarint key:bytes ×n
//	  RespMulti:              n:uvarint (found:1 value:bytes) ×n   (MGET, in request key order)
//	  RespHashes:             n:uvarint hash:8 ×n                  (TREE, one per requested span)
//	  RespScan:               n:uvarint (key:bytes hash:8) ×n      (SCAN, sorted by key)
//	  RespSyncWAL:            next:uvarint done:1 chunk:bytes      (SYNCWAL dump)
//	  RespErr:                message:bytes
//
// Values are opaque bytes — the length prefix lifts the text protocol's
// no-CR/LF restriction entirely. Keys stay under the text protocol's
// rules (non-empty, no whitespace) because the two protocols share one
// store and a key written here can surface in a text KEYS response.
// The codec itself enforces only the structural half (non-empty); the
// server enforces the whitespace rule.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic is the negotiation byte a binary client sends first. It can
// never open a text connection: text frames start 0x00 (see package
// comment).
const Magic byte = 0xB1

// MaxFrame mirrors the transport's frame cap so the decoder can reject
// length fields no well-formed frame could carry, before allocating.
const MaxFrame = 1 << 20

// Request verbs.
const (
	VerbPing  byte = 0x01
	VerbSet   byte = 0x02
	VerbGet   byte = 0x03
	VerbDel   byte = 0x04
	VerbMDel  byte = 0x05
	VerbCount byte = 0x06
	VerbKeys  byte = 0x07
	VerbMGet  byte = 0x08
	VerbMPut  byte = 0x09
	// Anti-entropy verbs: SETV is a version-conditional set (the server
	// applies it only if the carried version wins the cluster's total
	// order), TREE fetches Merkle range hashes, SCAN lists (key, entry
	// hash) pairs for a span of Merkle buckets.
	VerbSetV byte = 0x0A
	VerbTree byte = 0x0B
	VerbScan byte = 0x0C
	// VerbSyncWAL is the WAL-streaming re-replication verb. A dump-mode
	// request (Mode SyncWALDump) asks the node for the next chunk of its
	// durable history — snapshot plus segment frames — from Cursor; an
	// apply-mode request (Mode SyncWALApply) carries a chunk of stream
	// frames in Value for the node to apply version-conditionally.
	VerbSyncWAL byte = 0x0D
)

// SyncWAL request modes.
const (
	SyncWALDump  byte = 0
	SyncWALApply byte = 1
)

// Response tags. The high bit distinguishes them from verbs so a
// misdirected PDU fails decode instead of aliasing.
const (
	RespOK       byte = 0x81
	RespValue    byte = 0x82
	RespNotFound byte = 0x83
	RespCount    byte = 0x84
	RespKeys     byte = 0x85
	RespMulti    byte = 0x86
	RespOverload byte = 0x87
	RespHashes   byte = 0x88
	RespScan     byte = 0x89
	// RespSyncWAL answers a dump-mode SYNCWAL: the chunk bytes (Value),
	// the cursor to pass next (N), and whether the dump is complete
	// (Done). Apply-mode SYNCWAL answers with RespCount.
	RespSyncWAL byte = 0x8A
	RespErr     byte = 0xFF
)

// Decode errors, all matchable with errors.Is.
var (
	ErrTruncated   = errors.New("wire: truncated PDU")
	ErrOversize    = errors.New("wire: length field exceeds payload")
	ErrUnknownVerb = errors.New("wire: unknown verb")
	ErrUnknownTag  = errors.New("wire: unknown response tag")
	ErrZeroKey     = errors.New("wire: zero-length key")
	ErrTrailing    = errors.New("wire: trailing bytes after PDU")
	ErrMalformed   = errors.New("wire: malformed PDU")
)

// KV is one key/value pair of an MPUT batch.
type KV struct {
	Key   string
	Value []byte
}

// Span is one half-open Merkle bucket range [Lo, Hi) of a TREE or SCAN
// request.
type Span struct {
	Lo, Hi uint32
}

// ScanEntry is one (key, entry hash) pair of a SCAN response.
type ScanEntry struct {
	Key  string
	Hash uint64
}

// Request is one decoded request PDU. Only the fields the verb uses
// are populated.
type Request struct {
	Verb   byte
	ID     uint64
	Key    string
	Value  []byte
	Keys   []string // MDel, MGet
	Pairs  []KV     // MPut
	Spans  []Span   // Tree, Scan
	Mode   byte     // SyncWAL: SyncWALDump or SyncWALApply
	Cursor uint64   // SyncWAL dump position
}

// Response is one decoded response PDU. Only the fields the tag uses
// are populated.
type Response struct {
	Tag    byte
	ID     uint64
	Value  []byte
	N      uint64
	Keys   []string
	Found  []bool      // MGET results, parallel with Values
	Values [][]byte    // MGET results, in request key order
	Hashes []uint64    // TREE results, one per requested span
	Scan   []ScanEntry // SCAN results
	Done   bool        // SYNCWAL dump complete
	Err    string
}

// verbName maps verbs to the text protocol's command words — for error
// messages and for synthesizing the text form fault-injection hooks
// match on.
func verbName(v byte) string {
	switch v {
	case VerbPing:
		return "PING"
	case VerbSet:
		return "SET"
	case VerbGet:
		return "GET"
	case VerbDel:
		return "DEL"
	case VerbMDel:
		return "MDEL"
	case VerbCount:
		return "COUNT"
	case VerbKeys:
		return "KEYS"
	case VerbMGet:
		return "MGET"
	case VerbMPut:
		return "MPUT"
	case VerbSetV:
		return "SETV"
	case VerbTree:
		return "TREE"
	case VerbScan:
		return "SCAN"
	case VerbSyncWAL:
		return "SYNCWAL"
	}
	return fmt.Sprintf("verb(0x%02x)", v)
}

// VerbName exposes the text command word for a verb byte.
func VerbName(v byte) string { return verbName(v) }

// --- encoding ---

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendRequest appends r's PDU encoding to dst and returns the
// extended slice.
func AppendRequest(dst []byte, r *Request) []byte {
	dst = append(dst, r.Verb)
	dst = binary.AppendUvarint(dst, r.ID)
	switch r.Verb {
	case VerbGet, VerbDel:
		dst = appendString(dst, r.Key)
	case VerbSet, VerbSetV:
		dst = appendString(dst, r.Key)
		dst = appendBytes(dst, r.Value)
	case VerbTree, VerbScan:
		dst = binary.AppendUvarint(dst, uint64(len(r.Spans)))
		for _, s := range r.Spans {
			dst = binary.AppendUvarint(dst, uint64(s.Lo))
			dst = binary.AppendUvarint(dst, uint64(s.Hi))
		}
	case VerbMDel, VerbMGet:
		dst = binary.AppendUvarint(dst, uint64(len(r.Keys)))
		for _, k := range r.Keys {
			dst = appendString(dst, k)
		}
	case VerbMPut:
		dst = binary.AppendUvarint(dst, uint64(len(r.Pairs)))
		for _, kv := range r.Pairs {
			dst = appendString(dst, kv.Key)
			dst = appendBytes(dst, kv.Value)
		}
	case VerbSyncWAL:
		dst = append(dst, r.Mode)
		dst = binary.AppendUvarint(dst, r.Cursor)
		dst = appendBytes(dst, r.Value)
	}
	return dst
}

// AppendResponse appends r's PDU encoding to dst and returns the
// extended slice.
func AppendResponse(dst []byte, r *Response) []byte {
	dst = append(dst, r.Tag)
	dst = binary.AppendUvarint(dst, r.ID)
	switch r.Tag {
	case RespValue:
		dst = appendBytes(dst, r.Value)
	case RespCount:
		dst = binary.AppendUvarint(dst, r.N)
	case RespKeys:
		dst = binary.AppendUvarint(dst, uint64(len(r.Keys)))
		for _, k := range r.Keys {
			dst = appendString(dst, k)
		}
	case RespMulti:
		dst = binary.AppendUvarint(dst, uint64(len(r.Values)))
		for i, v := range r.Values {
			if r.Found[i] {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
			dst = appendBytes(dst, v)
		}
	case RespHashes:
		dst = binary.AppendUvarint(dst, uint64(len(r.Hashes)))
		for _, h := range r.Hashes {
			dst = binary.BigEndian.AppendUint64(dst, h)
		}
	case RespScan:
		dst = binary.AppendUvarint(dst, uint64(len(r.Scan)))
		for _, e := range r.Scan {
			dst = appendString(dst, e.Key)
			dst = binary.BigEndian.AppendUint64(dst, e.Hash)
		}
	case RespSyncWAL:
		dst = binary.AppendUvarint(dst, r.N)
		if r.Done {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes(dst, r.Value)
	case RespErr:
		dst = appendString(dst, r.Err)
	}
	return dst
}

// --- decoding ---

// cursor walks a payload with bounds-checked reads; every failure mode
// maps to a typed error naming the field that broke.
type cursor struct {
	p   []byte
	pos int
}

func (c *cursor) rem() int { return len(c.p) - c.pos }

func (c *cursor) byte(field string) (byte, error) {
	if c.rem() < 1 {
		return 0, fmt.Errorf("%w: %s at offset %d", ErrTruncated, field, c.pos)
	}
	b := c.p[c.pos]
	c.pos++
	return b, nil
}

func (c *cursor) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(c.p[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: %s at offset %d", ErrTruncated, field, c.pos)
	}
	// Reject non-minimal encodings (a trailing zero continuation group)
	// so every value has exactly one wire form — the property the fuzz
	// harness checks by re-encoding.
	if n > 1 && c.p[c.pos+n-1] == 0 {
		return 0, fmt.Errorf("%w: non-minimal varint for %s at offset %d", ErrMalformed, field, c.pos)
	}
	c.pos += n
	return v, nil
}

// bytes reads a uvarint length then that many raw bytes. The length is
// checked against both the frame cap and the bytes actually present, so
// a hostile header can neither force a huge allocation nor read past
// the payload.
func (c *cursor) bytes(field string) ([]byte, error) {
	n, err := c.uvarint(field + " length")
	if err != nil {
		return nil, err
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %s claims %d bytes", ErrOversize, field, n)
	}
	if uint64(c.rem()) < n {
		return nil, fmt.Errorf("%w: %s claims %d bytes, %d remain", ErrOversize, field, n, c.rem())
	}
	b := c.p[c.pos : c.pos+int(n)]
	c.pos += int(n)
	return b, nil
}

// count reads a sequence count and sanity-checks it against the bytes
// left: every element costs at least minPer bytes, so a count the
// payload cannot possibly hold is rejected before any allocation.
func (c *cursor) count(field string, minPer int) (int, error) {
	n, err := c.uvarint(field)
	if err != nil {
		return 0, err
	}
	if n > uint64(c.rem()/minPer) {
		return 0, fmt.Errorf("%w: %s claims %d elements, %d bytes remain", ErrOversize, field, n, c.rem())
	}
	return int(n), nil
}

// u64 reads a fixed 8-byte big-endian word (Merkle hashes — uniformly
// random 64-bit values, which a uvarint would inflate to ~9.2 bytes).
func (c *cursor) u64(field string) (uint64, error) {
	if c.rem() < 8 {
		return 0, fmt.Errorf("%w: %s at offset %d", ErrTruncated, field, c.pos)
	}
	v := binary.BigEndian.Uint64(c.p[c.pos:])
	c.pos += 8
	return v, nil
}

// span reads one bucket range and checks it is well-formed: bounds fit
// in 32 bits and Lo < Hi (an empty span has no possible use and is
// rejected as malformed).
func (c *cursor) span(field string) (Span, error) {
	lo, err := c.uvarint(field + " lo")
	if err != nil {
		return Span{}, err
	}
	hi, err := c.uvarint(field + " hi")
	if err != nil {
		return Span{}, err
	}
	if lo >= hi || hi >= 1<<32 {
		return Span{}, fmt.Errorf("%w: %s is [%d, %d)", ErrMalformed, field, lo, hi)
	}
	return Span{Lo: uint32(lo), Hi: uint32(hi)}, nil
}

func (c *cursor) key(field string) (string, error) {
	b, err := c.bytes(field)
	if err != nil {
		return "", err
	}
	if len(b) == 0 {
		return "", fmt.Errorf("%w: %s", ErrZeroKey, field)
	}
	return string(b), nil
}

// DecodeRequest decodes one request PDU. On error the returned Request
// is non-nil whenever the verb and correlation ID were readable, so a
// server can still address its error response.
func DecodeRequest(p []byte) (*Request, error) {
	c := &cursor{p: p}
	verb, err := c.byte("verb")
	if err != nil {
		return nil, err
	}
	id, err := c.uvarint("correlation ID")
	if err != nil {
		return nil, err
	}
	r := &Request{Verb: verb, ID: id}
	switch verb {
	case VerbPing, VerbCount, VerbKeys:
		// empty body
	case VerbGet, VerbDel:
		if r.Key, err = c.key("key"); err != nil {
			return r, err
		}
	case VerbSet, VerbSetV:
		if r.Key, err = c.key("key"); err != nil {
			return r, err
		}
		if r.Value, err = c.bytes("value"); err != nil {
			return r, err
		}
	case VerbTree, VerbScan:
		n, err := c.count("span count", 2)
		if err != nil {
			return r, err
		}
		r.Spans = make([]Span, 0, n)
		for i := 0; i < n; i++ {
			s, err := c.span(fmt.Sprintf("span %d", i))
			if err != nil {
				return r, err
			}
			r.Spans = append(r.Spans, s)
		}
	case VerbMDel, VerbMGet:
		n, err := c.count("key count", 1)
		if err != nil {
			return r, err
		}
		r.Keys = make([]string, 0, n)
		for i := 0; i < n; i++ {
			k, err := c.key(fmt.Sprintf("key %d", i))
			if err != nil {
				return r, err
			}
			r.Keys = append(r.Keys, k)
		}
	case VerbMPut:
		n, err := c.count("pair count", 2)
		if err != nil {
			return r, err
		}
		r.Pairs = make([]KV, 0, n)
		for i := 0; i < n; i++ {
			k, err := c.key(fmt.Sprintf("key %d", i))
			if err != nil {
				return r, err
			}
			v, err := c.bytes(fmt.Sprintf("value %d", i))
			if err != nil {
				return r, err
			}
			r.Pairs = append(r.Pairs, KV{Key: k, Value: v})
		}
	case VerbSyncWAL:
		if r.Mode, err = c.byte("syncwal mode"); err != nil {
			return r, err
		}
		if r.Mode > SyncWALApply {
			return r, fmt.Errorf("%w: syncwal mode 0x%02x", ErrMalformed, r.Mode)
		}
		if r.Cursor, err = c.uvarint("syncwal cursor"); err != nil {
			return r, err
		}
		if r.Value, err = c.bytes("syncwal chunk"); err != nil {
			return r, err
		}
	default:
		return r, fmt.Errorf("%w: 0x%02x", ErrUnknownVerb, verb)
	}
	if c.rem() != 0 {
		return r, fmt.Errorf("%w: %d after %s", ErrTrailing, c.rem(), verbName(verb))
	}
	return r, nil
}

// DecodeResponse decodes one response PDU.
func DecodeResponse(p []byte) (*Response, error) {
	c := &cursor{p: p}
	tag, err := c.byte("tag")
	if err != nil {
		return nil, err
	}
	id, err := c.uvarint("correlation ID")
	if err != nil {
		return nil, err
	}
	r := &Response{Tag: tag, ID: id}
	switch tag {
	case RespOK, RespNotFound, RespOverload:
		// empty body
	case RespValue:
		if r.Value, err = c.bytes("value"); err != nil {
			return r, err
		}
	case RespCount:
		if r.N, err = c.uvarint("count"); err != nil {
			return r, err
		}
	case RespKeys:
		n, err := c.count("key count", 1)
		if err != nil {
			return r, err
		}
		r.Keys = make([]string, 0, n)
		for i := 0; i < n; i++ {
			// A KEYS response may legitimately carry keys the text
			// protocol could not (defensive: reject zero-length anyway).
			k, err := c.key(fmt.Sprintf("key %d", i))
			if err != nil {
				return r, err
			}
			r.Keys = append(r.Keys, k)
		}
	case RespMulti:
		n, err := c.count("entry count", 2)
		if err != nil {
			return r, err
		}
		r.Found = make([]bool, 0, n)
		r.Values = make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			f, err := c.byte(fmt.Sprintf("found flag %d", i))
			if err != nil {
				return r, err
			}
			if f > 1 {
				return r, fmt.Errorf("%w: found flag %d is 0x%02x", ErrMalformed, i, f)
			}
			v, err := c.bytes(fmt.Sprintf("value %d", i))
			if err != nil {
				return r, err
			}
			r.Found = append(r.Found, f != 0)
			r.Values = append(r.Values, v)
		}
	case RespHashes:
		n, err := c.count("hash count", 8)
		if err != nil {
			return r, err
		}
		r.Hashes = make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			h, err := c.u64(fmt.Sprintf("hash %d", i))
			if err != nil {
				return r, err
			}
			r.Hashes = append(r.Hashes, h)
		}
	case RespScan:
		n, err := c.count("entry count", 10)
		if err != nil {
			return r, err
		}
		r.Scan = make([]ScanEntry, 0, n)
		for i := 0; i < n; i++ {
			k, err := c.key(fmt.Sprintf("key %d", i))
			if err != nil {
				return r, err
			}
			h, err := c.u64(fmt.Sprintf("entry hash %d", i))
			if err != nil {
				return r, err
			}
			r.Scan = append(r.Scan, ScanEntry{Key: k, Hash: h})
		}
	case RespSyncWAL:
		if r.N, err = c.uvarint("syncwal next cursor"); err != nil {
			return r, err
		}
		d, err := c.byte("syncwal done flag")
		if err != nil {
			return r, err
		}
		if d > 1 {
			return r, fmt.Errorf("%w: syncwal done flag is 0x%02x", ErrMalformed, d)
		}
		r.Done = d != 0
		if r.Value, err = c.bytes("syncwal chunk"); err != nil {
			return r, err
		}
	case RespErr:
		msg, err := c.bytes("error message")
		if err != nil {
			return r, err
		}
		r.Err = string(msg)
	default:
		return r, fmt.Errorf("%w: 0x%02x", ErrUnknownTag, tag)
	}
	if c.rem() != 0 {
		return r, fmt.Errorf("%w: %d after tag 0x%02x", ErrTrailing, c.rem(), tag)
	}
	return r, nil
}
