package sockets

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkShardedStoreVsSingleLock is the tentpole experiment at store
// granularity: 8 concurrent clients issuing mixed SET/GET through the
// server's request handler, with the store striped across 1 vs 16
// rwlocks. Even on one core the single lock loses — every operation
// pays the contended-mutex/condvar wakeup path, while sharding keeps
// most acquisitions uncontended.
func BenchmarkShardedStoreVsSingleLock(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"single-lock", 1}, {"sharded-16", 16}} {
		b.Run(tc.name, func(b *testing.B) {
			s, err := NewServerConfig("127.0.0.1:0", ServerConfig{Shards: tc.shards})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			const clients = 8
			per := b.N/clients + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						key := fmt.Sprintf("k%d-%d", w, j%64)
						if j%2 == 0 {
							s.handle("SET " + key + " v")
						} else {
							s.handle("GET " + key)
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(clients*per)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}
