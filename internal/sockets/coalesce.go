package sockets

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
)

// errWriterClosed reports an enqueue on a frameWriter that has already
// been stopped (its connection incarnation is being retired).
var errWriterClosed = errors.New("sockets: frame writer closed")

// frameWriter is the writing half of a pipelined connection: callers
// enqueue encoded frames and return immediately; a dedicated writer
// goroutine drains whatever has accumulated and ships the whole batch
// with one conn.Write. The batching is self-clocking — while one flush
// syscall is in flight, every frame that arrives queues behind it and
// rides the next flush — so under N in-flight operations up to N write
// syscalls collapse into one. That amortization (and its mirror on the
// read side, one buffered reader draining responses) is where the
// binary protocol's throughput edge over write-read-per-turn text
// comes from on low-latency links.
//
// Write errors surface asynchronously on the onErr callback (once); by
// then earlier write() calls have already returned nil, which is fine —
// a broken connection fails the whole incarnation and the per-request
// retry machinery takes over. A wedged peer is handled the same way:
// nobody arms write deadlines here, the owner just closes the conn
// (dead-conn heuristic, pool Close, server drain cutoff), which breaks
// a blocked Write with an error.
type frameWriter struct {
	conn  net.Conn
	onErr func(error) // called once, from the writer goroutine

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	err    error // latched first failure
	closed bool
	done   chan struct{} // closed when loop exits (queue drained or conn failed)
}

func newFrameWriter(conn net.Conn, onErr func(error)) *frameWriter {
	w := &frameWriter{conn: conn, onErr: onErr, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

// write enqueues one encoded frame payload (the writer adds the length
// header). It fails fast only if the writer already died or stopped.
func (w *frameWriter) write(frame []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return errWriterClosed
	}
	w.queue = append(w.queue, frame)
	w.mu.Unlock()
	w.cond.Signal()
	return nil
}

// stop shuts the writer down and blocks until everything already
// queued has been flushed onto the connection (or the connection has
// failed) — when stop returns, no response is stranded in the queue, so
// a caller tearing a connection down can stop-then-close without
// dropping frames. A wedged flush cannot block stop forever: whoever
// owns the conn closes it eventually (pool Close, server drain cutoff),
// which fails the in-flight Write and releases the loop. Safe to call
// more than once; concurrent write() calls after stop get
// errWriterClosed.
func (w *frameWriter) stop() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Signal()
	<-w.done
}

func (w *frameWriter) loop() {
	defer close(w.done)
	buf := make([]byte, 0, 64<<10)
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed && w.err == nil {
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && len(w.queue) == 0) {
			w.mu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		w.mu.Unlock()

		buf = buf[:0]
		for _, f := range batch {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(len(f)))
			buf = append(buf, hdr[:]...)
			buf = append(buf, f...)
		}
		if _, err := w.conn.Write(buf); err != nil {
			w.mu.Lock()
			w.err = err
			w.mu.Unlock()
			if w.onErr != nil {
				w.onErr(err)
			}
			return
		}
	}
}
