// Crash-recovery tests for the durable (WAL-backed) server: kill -9
// semantics via Server.Crash, then a fresh incarnation on the same
// directory must serve every acked write. External package so the raw
// binary-PDU helpers in binary_test.go are shared.
package sockets_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sockets"
	"repro/internal/sockets/wire"
)

// startDurable starts a server logging into dir. No t.Cleanup close:
// these tests Crash and restart servers by hand.
func startDurable(t *testing.T, dir string, cfg sockets.ServerConfig) *sockets.Server {
	t.Helper()
	cfg.WALDir = dir
	s, err := sockets.NewServerConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("NewServerConfig: %v", err)
	}
	return s
}

// TestCrashRecovery_SnapshotTail100k is the headline acceptance check:
// 100k acked writes, kill -9, and the restarted node rebuilds the full
// store from snapshot + log tail — no peer, no hint replay, just its
// own directory.
func TestCrashRecovery_SnapshotTail100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-write recovery soak")
	}
	dir := t.TempDir()
	// Snapshot every 16 mutations so recovery genuinely exercises the
	// snapshot + tail path rather than a pure log replay.
	s := startDurable(t, dir, sockets.ServerConfig{WALSnapshotEvery: 16})

	p, err := sockets.NewPool(s.Addr(), sockets.PoolConfig{Proto: sockets.ProtoBinary})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	const batches, perBatch = 100, 1000
	for b := 0; b < batches; b++ {
		pairs := make([]sockets.KV, 0, perBatch)
		for i := 0; i < perBatch; i++ {
			k := fmt.Sprintf("key-%05d", b*perBatch+i)
			pairs = append(pairs, sockets.KV{Key: k, Value: "v-" + k})
		}
		if err := p.MPut(pairs); err != nil {
			t.Fatalf("MPut batch %d: %v", b, err)
		}
	}
	p.Close()
	if err := s.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	if _, err := os.Stat(filepath.Join(dir, "snapshot")); err != nil {
		t.Fatalf("no snapshot written after %d batches: %v", batches, err)
	}

	recoverStart := time.Now()
	s2 := startDurable(t, dir, sockets.ServerConfig{WALSnapshotEvery: 16})
	recovery := time.Since(recoverStart)
	defer s2.Close()
	if got := s2.RecoveredKeys(); got != batches*perBatch {
		t.Fatalf("RecoveredKeys = %d, want %d", got, batches*perBatch)
	}
	t.Logf("recovered %d keys from snapshot + log tail in %v", s2.RecoveredKeys(), recovery)
	c, err := sockets.Dial(s2.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	n, err := c.Count()
	if err != nil || n != batches*perBatch {
		t.Fatalf("Count = %d, %v; want %d", n, err, batches*perBatch)
	}
	for _, probe := range []int{0, 1, perBatch, batches*perBatch/2 + 7, batches*perBatch - 1} {
		k := fmt.Sprintf("key-%05d", probe)
		v, found, err := c.Get(k)
		if err != nil || !found || v != "v-"+k {
			t.Fatalf("Get(%s) = %q, %v, %v; want recovered value", k, v, found, err)
		}
	}
}

// TestCrashRecovery_AckedWritesSurvive nails the contract: every
// mutation acked before Crash is served after restart, across both
// protocols and all mutating verbs.
func TestCrashRecovery_AckedWritesSurvive(t *testing.T) {
	dir := t.TempDir()
	s := startDurable(t, dir, sockets.ServerConfig{})
	c, err := sockets.Dial(s.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	const acked = 200
	for i := 0; i < acked; i++ {
		if err := c.Set(fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	// Deletes must replay too — recovery is the full mutation history,
	// not a union of surviving keys.
	if existed, err := c.Del("k000"); err != nil || !existed {
		t.Fatalf("Del = %v, %v", existed, err)
	}
	c.Close()
	if err := s.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	s2 := startDurable(t, dir, sockets.ServerConfig{})
	defer s2.Close()
	c2, err := sockets.Dial(s2.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c2.Close()
	if _, found, err := c2.Get("k000"); err != nil || found {
		t.Fatalf("deleted key resurrected across crash (found=%v err=%v)", found, err)
	}
	for i := 1; i < acked; i++ {
		k := fmt.Sprintf("k%03d", i)
		v, found, err := c2.Get(k)
		if err != nil || !found || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked key %s lost across crash (%q, %v, %v)", k, v, found, err)
		}
	}
}

// TestCrashRecovery_DedupeSurvivesRestart: a mutation acked just before
// the crash must stay exactly-once when its retry (same client ID, same
// correlation ID) arrives after the restart.
func TestCrashRecovery_DedupeSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := startDurable(t, dir, sockets.ServerConfig{})

	conn := rawBinaryConn(t, s.Addr(), 42)
	if resp := sendPDU(t, conn, &wire.Request{Verb: wire.VerbSet, ID: 1, Key: "k", Value: []byte("v")}); resp.Tag != wire.RespOK {
		t.Fatalf("SET tag = %d", resp.Tag)
	}
	// DEL k: the first application reports OK (existed). A re-applied
	// duplicate would report NOTFOUND — the recorded response is the tell.
	if resp := sendPDU(t, conn, &wire.Request{Verb: wire.VerbDel, ID: 2, Key: "k"}); resp.Tag != wire.RespOK {
		t.Fatalf("DEL tag = %d, want OK", resp.Tag)
	}
	conn.Close()
	if err := s.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	s2 := startDurable(t, dir, sockets.ServerConfig{})
	defer s2.Close()
	conn2 := rawBinaryConn(t, s2.Addr(), 42)
	// Retry of correlation ID 2 from client 42: must replay the
	// recorded OK, not re-apply (the key is gone now).
	if resp := sendPDU(t, conn2, &wire.Request{Verb: wire.VerbDel, ID: 2, Key: "k"}); resp.Tag != wire.RespOK {
		t.Fatalf("retried DEL tag = %d: re-applied after restart instead of replaying the recording — exactly-once broken", resp.Tag)
	}
	if s2.DedupeHits() == 0 {
		t.Fatal("retry not answered from the recovered dedupe table")
	}
}

// TestCrashRecovery_LogOrderMatchesApplyOrder: concurrent writers
// hammering one key must recover to exactly the value the live server
// last served. The WAL enqueue is reserved under the same shard lock as
// the store write — were it enqueued after unlock, two racing SETs
// could apply in one order and log in the other, and replay would
// resurrect the stale value (an acked write silently lost).
func TestCrashRecovery_LogOrderMatchesApplyOrder(t *testing.T) {
	const rounds, writers = 12, 8
	for round := 0; round < rounds; round++ {
		dir := t.TempDir()
		s := startDurable(t, dir, sockets.ServerConfig{})
		p, err := sockets.NewPool(s.Addr(), sockets.PoolConfig{Proto: sockets.ProtoBinary})
		if err != nil {
			t.Fatalf("NewPool: %v", err)
		}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := p.Set("contested", fmt.Sprintf("writer-%d-round-%d", w, round)); err != nil {
					t.Errorf("Set: %v", err)
				}
			}(w)
		}
		wg.Wait()
		live, found, err := p.Get("contested")
		if err != nil || !found {
			t.Fatalf("Get live = %q, %v, %v", live, found, err)
		}
		p.Close()
		if err := s.Crash(); err != nil {
			t.Fatalf("Crash: %v", err)
		}
		s2 := startDurable(t, dir, sockets.ServerConfig{})
		c, err := sockets.Dial(s2.Addr())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		recovered, found, err := c.Get("contested")
		if err != nil || !found {
			t.Fatalf("Get recovered = %q, %v, %v", recovered, found, err)
		}
		c.Close()
		s2.Close()
		if recovered != live {
			t.Fatalf("round %d: recovered %q but the live server last served %q — log order diverged from apply order", round, recovered, live)
		}
	}
}

// TestCrashRecovery_DedupeSurvivesSnapshotPrune: with a snapshot after
// every mutation, each record's segment is pruned almost immediately —
// the recorded response must already be in the snapshot when its record
// is. (The recording is published before the WAL enqueue, under the
// shard lock; were it published only after the fsync wait, a rotation
// racing in between would prune the record while the snapshot misses
// the recording, and the retried DEL below would re-apply and answer
// NOTFOUND.)
func TestCrashRecovery_DedupeSurvivesSnapshotPrune(t *testing.T) {
	dir := t.TempDir()
	s := startDurable(t, dir, sockets.ServerConfig{WALSnapshotEvery: 1})
	conn := rawBinaryConn(t, s.Addr(), 77)
	const n = 60
	for i := uint64(0); i < n; i++ {
		k := fmt.Sprintf("k%02d", i)
		if resp := sendPDU(t, conn, &wire.Request{Verb: wire.VerbSet, ID: 2 * i, Key: k, Value: []byte("v")}); resp.Tag != wire.RespOK {
			t.Fatalf("SET %s tag = %d", k, resp.Tag)
		}
		if resp := sendPDU(t, conn, &wire.Request{Verb: wire.VerbDel, ID: 2*i + 1, Key: k}); resp.Tag != wire.RespOK {
			t.Fatalf("DEL %s tag = %d, want OK", k, resp.Tag)
		}
	}
	conn.Close()
	if err := s.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	s2 := startDurable(t, dir, sockets.ServerConfig{WALSnapshotEvery: 1})
	defer s2.Close()
	conn2 := rawBinaryConn(t, s2.Addr(), 77)
	defer conn2.Close()
	for i := uint64(0); i < n; i++ {
		if resp := sendPDU(t, conn2, &wire.Request{Verb: wire.VerbDel, ID: 2*i + 1, Key: fmt.Sprintf("k%02d", i)}); resp.Tag != wire.RespOK {
			t.Fatalf("retried DEL id %d tag = %d: recording lost across snapshot prune — exactly-once broken", 2*i+1, resp.Tag)
		}
	}
}

// TestCrashRecovery_TextRejectsUnloggableKeys: the text protocol can
// frame keys the WAL's replay decoder refuses (an empty key in "SET  v"
// or "DEL "). Those must be rejected before they reach the log — a
// single such record would make every subsequent Open fail, bricking
// the node.
func TestCrashRecovery_TextRejectsUnloggableKeys(t *testing.T) {
	dir := t.TempDir()
	s := startDurable(t, dir, sockets.ServerConfig{})
	conn := rawConn(t, s.Addr())
	sendText := func(req string) string {
		t.Helper()
		if err := sockets.WriteFrame(conn, []byte(req)); err != nil {
			t.Fatalf("write %q: %v", req, err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		resp, err := sockets.ReadFrame(conn)
		if err != nil {
			t.Fatalf("read response to %q: %v", req, err)
		}
		return string(resp)
	}
	if got := sendText("SET  empty-key-value"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("SET with empty key = %q, want ERR", got)
	}
	if got := sendText("DEL "); got != "NOTFOUND" {
		t.Fatalf("DEL with empty key = %q, want NOTFOUND (nothing logged)", got)
	}
	if got := sendText("SET k v"); got != "OK" {
		t.Fatalf("SET k v = %q", got)
	}
	conn.Close()
	if err := s.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// The proof: recovery replays cleanly and serves the one valid write.
	s2 := startDurable(t, dir, sockets.ServerConfig{})
	defer s2.Close()
	if got := s2.RecoveredKeys(); got != 1 {
		t.Fatalf("RecoveredKeys = %d, want 1", got)
	}
}
