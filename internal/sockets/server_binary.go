package sockets

import (
	"bufio"
	"encoding/binary"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sockets/wire"
	"repro/internal/version"
	"repro/internal/wal"
)

// dedupeCap bounds the server-wide retry-dedupe table — the hard
// memory backstop when age-based eviction alone cannot keep up with
// the mutation rate. Completed entries are small (the key pair plus an
// encoded OK/NOTFOUND/COUNT response), so the worst case is a few MiB.
const dedupeCap = 1 << 16

// dedupeRetryHorizon is how long a completed mutation's recorded
// response stays replayable before age eviction may drop it. It must
// cover the latest a Pool retry can arrive after the first application:
// with the default config that is (MaxAttempts-1) × (attempt timeout +
// max backoff) ≈ 2 × 2.25s, so 5s covers the defaults with margin.
// Entries evicted older than this cannot break exactly-once — the
// client has exhausted its attempts; entries evicted younger (capacity
// backstop) can, and are counted in earlyEvict.
const dedupeRetryHorizon = 5 * time.Second

// dedupeStripes spreads the table over independently locked stripes so
// concurrent mutations from many pipelined requests do not serialize on
// one mutex (the same reason the store itself is sharded).
const dedupeStripes = 16

// dedupeKey identifies one client's logical request across retries.
type dedupeKey struct {
	client uint64
	id     uint64
}

// dedupeEntry is one recorded (or in-progress) mutation. done closes
// when resp and tick are valid, so a retry that races the original
// attempt waits for the first application instead of applying a second
// one. tick is the original's durability ticket (nil on a memory-only
// server): a retry waits it out before replaying resp, so a recording —
// which is published before its covering fsync — can never leak a
// response earlier than the original would have. doneAt stamps
// completion for age-based eviction.
type dedupeEntry struct {
	done   chan struct{}
	resp   []byte
	tick   *wal.Ticket
	doneAt time.Time
}

// dedupeTable makes retried non-idempotent binary PDUs (SET/DEL/MDEL/
// MPUT) exactly-once on the server: the first arrival of a (client,
// correlation ID) pair applies the op and records the encoded response;
// any later arrival — the Pool retries with the same ID after an
// ambiguous transport failure — replays the recording. The text
// protocol has no correlation IDs and keeps its at-least-once
// ambiguity; DESIGN.md documents the limitation. Stripes are locked
// independently; a (client, id) pair always hashes to the same stripe,
// so the exactly-once argument is per-stripe and unchanged.
//
// Eviction is age-first: a completed entry older than horizon can no
// longer see a retry (the client exhausted its attempts) and is dropped
// for free. The capacity cap is only a memory backstop; when it forces
// out an entry still inside the horizon, exactly-once degrades to
// at-least-once for a straggling retry of that op — earlyEvict counts
// those so the degradation is observable instead of silent.
type dedupeTable struct {
	horizon    time.Duration
	earlyEvict atomic.Int64
	stripes    [dedupeStripes]dedupeStripe
}

type dedupeStripe struct {
	mu      sync.Mutex
	cap     int
	entries map[dedupeKey]*dedupeEntry
	order   []dedupeKey // completed entries, oldest first; head is the eviction cursor
	head    int
}

func newDedupeTable(capacity int, horizon time.Duration) *dedupeTable {
	per := capacity / dedupeStripes
	if per < 1 {
		per = 1
	}
	t := &dedupeTable{horizon: horizon}
	for i := range t.stripes {
		t.stripes[i] = dedupeStripe{
			cap:     per,
			entries: make(map[dedupeKey]*dedupeEntry, per),
			order:   make([]dedupeKey, 0, per),
		}
	}
	return t
}

func (t *dedupeTable) stripe(k dedupeKey) *dedupeStripe {
	// Correlation IDs are sequential and client IDs random; fold both in
	// so neither axis alone maps every key to one stripe.
	h := (k.client*0x9e3779b97f4a7c15 ^ k.id*0xbf58476d1ce4e5b9) >> 32
	return &t.stripes[h%dedupeStripes]
}

// evictOldest drops the oldest completed entry. Caller holds d.mu.
func (d *dedupeStripe) evictOldest() {
	delete(d.entries, d.order[d.head])
	d.order[d.head] = dedupeKey{}
	d.head++
	// Compact once the dead prefix dominates, so order doesn't grow
	// without bound under churn.
	if d.head > 64 && d.head > len(d.order)/2 {
		d.order = append(d.order[:0], d.order[d.head:]...)
		d.head = 0
	}
}

// begin claims k. When the op is a duplicate it returns the prior
// entry (wait on entry.done, then read entry.resp); otherwise it
// returns a fresh pending entry the caller must complete with finish.
func (t *dedupeTable) begin(k dedupeKey) (entry *dedupeEntry, duplicate bool) {
	d := t.stripe(k)
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[k]; ok {
		return e, true
	}
	e := &dedupeEntry{done: make(chan struct{})}
	d.entries[k] = e
	return e, false
}

// record publishes a pending entry's response without releasing its
// waiters, drops completed entries that have aged past the retry
// horizon, and applies the capacity backstop (counting the early
// evictions it forces). On a durable server this runs under the shard
// lock(s), after the mutation is applied and before its WAL position is
// reserved: a snapshot capture that will prune the record's segment is
// thereby guaranteed to already see the recording, which is what keeps
// exactly-once intact across a crash that lands between an append's
// fsync and its release (the recording can otherwise miss both the
// snapshot and the pruned log). Idempotent — a second call for the same
// entry is a no-op.
func (t *dedupeTable) record(k dedupeKey, e *dedupeEntry, resp []byte) {
	d := t.stripe(k)
	now := time.Now()
	d.mu.Lock()
	if e.resp == nil {
		e.resp = resp
		e.doneAt = now
		d.order = append(d.order, k)
		for d.head < len(d.order) && now.Sub(d.entries[d.order[d.head]].doneAt) >= t.horizon {
			d.evictOldest()
		}
		for len(d.order)-d.head > d.cap {
			d.evictOldest()
			t.earlyEvict.Add(1)
		}
	}
	d.mu.Unlock()
}

// complete attaches the durability ticket and releases every waiter.
// Must follow record for the same entry; the close orders both writes
// before any waiter's reads.
func (e *dedupeEntry) complete(tick *wal.Ticket) {
	e.tick = tick
	close(e.done)
}

// finish records the response and releases waiters in one step — for
// paths with no durability ticket to thread through.
func (t *dedupeTable) finish(k dedupeKey, e *dedupeEntry, resp []byte) {
	t.record(k, e, resp)
	e.complete(nil)
}

// DedupeHits reports how many retried binary mutations the server
// answered from the dedupe table instead of re-applying.
func (s *Server) DedupeHits() int64 { return s.dedupHit.Load() }

// DedupeEarlyEvictions reports how many recorded mutations the dedupe
// table's capacity backstop evicted while still inside the retry
// horizon. Non-zero means the exactly-once guarantee for retried binary
// mutations has degraded to at-least-once under the current load —
// size dedupeCap up (or shorten client retry windows) if it climbs.
func (s *Server) DedupeEarlyEvictions() int64 { return s.dedupe.earlyEvict.Load() }

// serveBinary is the per-connection demultiplexer: it decodes frames
// off one reader, dispatches each PDU to its own goroutine against the
// sharded store, and writes responses back as they complete —
// out-of-order, matched to requests by correlation ID. One slow GET no
// longer convoys the pipeline behind it.
func (s *Server) serveBinary(cs *connState, br *bufio.Reader) {
	var cid [8]byte
	if _, err := io.ReadFull(br, cid[:]); err != nil {
		return // died during the handshake
	}
	clientID := binary.BigEndian.Uint64(cid[:])

	// Coalesced response writes; a broken write closes the conn, which
	// breaks the read loop below and unwinds the whole connection.
	fw := newFrameWriter(cs.conn, func(error) { cs.conn.Close() })
	// Publish the writer so a graceful Close can flush queued responses
	// before cutting a connection it considers idle.
	cs.mu.Lock()
	cs.fw = fw
	cs.mu.Unlock()
	defer fw.stop() // after wg.Wait: late handler responses still drain
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			return // EOF, broken pipe, or cut by Close: client done
		}
		req, derr := wire.DecodeRequest(payload)
		s.reqSeen.Add(1)
		if derr != nil {
			// Frame boundaries are still sound (the length prefix held),
			// so a malformed PDU poisons only itself: answer ERR on the
			// ID if one decoded, keep serving.
			s.errSeen.Add(1)
			var id uint64
			if req != nil {
				id = req.ID
			}
			out := wire.AppendResponse(nil, &wire.Response{Tag: wire.RespErr, ID: id, Err: derr.Error()})
			if fw.write(out) != nil {
				return
			}
			continue
		}
		if req.Verb != wire.VerbPing && !s.admit() {
			// Shed before the dedupe table sees the correlation ID: a shed
			// attempt must leave no pending dedupe entry behind, or the
			// client's retry of the same ID would wait on a recording that
			// will never be finished. O(1) answer, no store work, no
			// goroutine.
			out := wire.AppendResponse(nil, &wire.Response{Tag: wire.RespOverload, ID: req.ID})
			if fw.write(out) != nil {
				return
			}
			continue
		}
		// Fast path: single-key verbs and the cheap aggregates run
		// inline, skipping a goroutine spawn per request. Reads cannot
		// block at all (no dedupe bookkeeping, shard RLocks only). An
		// inline SET/DEL can wait on a dedupe entry only when it is a
		// retried duplicate racing its original — and the wait graph
		// always points at a strictly older entry whose owner never
		// waits in turn, so the loop can stall briefly but never
		// deadlock. What keeps its own goroutine: batch verbs and KEYS
		// (big enough to convoy the pipeline behind them), and every
		// verb once a PreHandle stall hook is installed — those are the
		// cases out-of-order completion exists for.
		//
		// MaxPending also forces the goroutine path: inline handling is
		// self-limiting (one request per connection in service at a
		// time), so a bounded pending queue is only meaningful when
		// pipelined ingestion is decoupled from service — the handler
		// goroutine set IS the pending queue admission control bounds.
		// A durable server routes mutations to the goroutine path even
		// when they would qualify for the fast path: an inline SET/DEL
		// would hold the connection's read loop through its fsync wait,
		// serializing the group commit to one record per connection per
		// flush — the goroutine path is what lets pipelined mutations
		// from one connection share a batch.
		if s.preHandle == nil && s.maxPending <= 0 {
			inline := false
			switch req.Verb {
			case wire.VerbPing, wire.VerbGet, wire.VerbCount:
				inline = true
			case wire.VerbSet, wire.VerbDel:
				inline = s.wal == nil
			}
			if inline {
				// The inline path still counts as in flight: a graceful
				// Close must see the request and grant it the same drain
				// grace as the text and goroutine paths instead of cutting
				// the conn under a mutation whose response isn't out yet.
				cs.addInflight(1)
				start := time.Now()
				resp := s.handleBinary(clientID, req)
				if resp.Tag == wire.RespErr {
					s.errSeen.Add(1)
				}
				out := wire.AppendResponse(nil, resp)
				werr := fw.write(out)
				if req.Verb != wire.VerbPing {
					s.release()
				}
				d := time.Since(start)
				s.latency.Observe(d)
				s.observeVerb(wire.VerbName(req.Verb), d)
				closing := cs.addInflight(-1)
				if werr != nil || closing || s.closed.Load() {
					// Unwinding runs fw.stop, which flushes the queued
					// response before the conn is torn down.
					return
				}
				continue
			}
		}
		cs.addInflight(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			if s.preHandle != nil {
				// Fault-injection hooks match on the text form's verb
				// prefix; synthesize enough of it for them.
				s.preHandle(preHandleText(req))
			}
			resp := s.handleBinary(clientID, req)
			if resp.Tag == wire.RespErr {
				s.errSeen.Add(1)
			}
			out := wire.AppendResponse(nil, resp)
			werr := fw.write(out)
			if req.Verb != wire.VerbPing {
				s.release()
			}
			d := time.Since(start)
			s.latency.Observe(d)
			s.observeVerb(wire.VerbName(req.Verb), d)
			closing := cs.addInflight(-1)
			if werr != nil || closing || s.closed.Load() {
				// Mirror the text loop's exit conditions: flush queued
				// responses (ours included), then close the conn, which
				// unblocks the read loop, which returns and joins us. A
				// flush wedged on a dead peer is unstuck by Close's
				// DrainTimeout hard close.
				fw.stop()
				cs.conn.Close()
			}
		}()
	}
}

// preHandleText renders the text-protocol shape of a binary PDU for
// ServerConfig.PreHandle, whose consumers (the chaos harness's
// per-verb stalls, tests asserting on request text) match on the verb
// word and key.
func preHandleText(r *wire.Request) string {
	out := wire.VerbName(r.Verb)
	if r.Key != "" {
		out += " " + r.Key
	}
	if r.Verb == wire.VerbSet {
		out += " " + string(r.Value)
	}
	return out
}

// handleBinary interprets one decoded PDU against the sharded store.
// Mutating verbs run through the dedupe table so a retried correlation
// ID is answered from the recording instead of applied twice.
func (s *Server) handleBinary(clientID uint64, r *wire.Request) *wire.Response {
	switch r.Verb {
	case wire.VerbPing, wire.VerbGet, wire.VerbCount, wire.VerbKeys, wire.VerbMGet,
		wire.VerbTree, wire.VerbScan:
		return s.applyBinary(r) // reads: idempotent, no dedupe bookkeeping
	case wire.VerbSetV:
		// SETV mutates but skips the dedupe table on purpose: the version
		// comparison makes it naturally idempotent (a retry of an applied
		// SETV finds its own stamp stored, compares Equal, and changes
		// nothing), so exactly-once needs no recording — and its WAL
		// record is only written when the compare said apply.
		return s.applyBinary(r)
	case wire.VerbSyncWAL:
		// SYNCWAL also skips the dedupe table: dumps read, and applies go
		// through the same version compare as SETV, so a retried chunk
		// re-folds to nothing.
		return s.applySyncWAL(r)
	}
	k := dedupeKey{client: clientID, id: r.ID}
	e, dup := s.dedupe.begin(k)
	if dup {
		<-e.done
		s.dedupHit.Add(1)
		// The recording was published before its covering fsync; the
		// retry must ride out the original's durability wait before it
		// may leak the response.
		if err := e.tick.Wait(); err != nil {
			return &wire.Response{Tag: wire.RespErr, ID: r.ID, Err: "durability: " + err.Error()}
		}
		resp, err := wire.DecodeResponse(e.resp)
		if err != nil {
			// Cannot happen: we encoded it. Fall through to a fresh apply
			// rather than wedge the connection.
			return s.applyBinary(r)
		}
		return resp
	}
	// Durable before acked: applyMutation applies the mutation, publishes
	// the dedupe recording, and reserves the WAL position — all under the
	// shard lock(s), so log order equals apply order and a snapshot can
	// never prune a record whose recording it missed. The fsync wait
	// happens off-lock, below.
	resp, tick := s.applyMutation(clientID, r, func(applied *wire.Response) {
		s.dedupe.record(k, e, wire.AppendResponse(nil, applied))
	})
	if resp.Tag == wire.RespErr {
		// Validation failure: nothing was applied or logged, so the
		// under-lock callback never ran — record the error here.
		s.dedupe.record(k, e, wire.AppendResponse(nil, resp))
	}
	e.complete(tick)
	if err := s.walWait(tick); err != nil {
		return &wire.Response{Tag: wire.RespErr, ID: r.ID, Err: "durability: " + err.Error()}
	}
	return resp
}

// applyMutation applies one mutating request and — on a durable server —
// reserves its WAL commit-queue position while every shard lock the
// mutation touched is still held, so two racing mutations to the same
// key can never be applied in one order and logged in the other (crash
// recovery would replay the log and resurrect the stale value). record,
// when non-nil, is invoked with the response inside the same critical
// section, after the apply and before the reservation — see
// dedupeTable.record for why that ordering is load-bearing. The caller
// owns the returned ticket's Wait (nil when memory-only or when
// validation failed and nothing was logged).
//
// Multi-key verbs lock every touched stripe at once, in ascending index
// order (deadlock-free against each other; single-key verbs hold one
// lock and nest nothing), rather than one stripe at a time: a per-key
// locking walk would let another writer's record interleave between
// this record's first and last key, breaking the log-order argument for
// the earlier keys.
func (s *Server) applyMutation(client uint64, r *wire.Request, record func(*wire.Response)) (*wire.Response, *wal.Ticket) {
	errResp := func(msg string) *wire.Response {
		return &wire.Response{Tag: wire.RespErr, ID: r.ID, Err: msg}
	}
	// seal publishes the outcome while the caller's locks are held:
	// dedupe recording first, then the commit-queue reservation.
	seal := func(resp *wire.Response) *wal.Ticket {
		if record != nil {
			record(resp)
		}
		if s.wal == nil {
			return nil
		}
		return s.wal.Begin(requestRecord(client, r))
	}
	switch r.Verb {
	case wire.VerbSet:
		if err := validateKey(r.Key); err != nil {
			return errResp(err.Error()), nil
		}
		sh := s.shardFor(r.Key)
		sh.lock.Lock()
		old, had := sh.store[r.Key]
		sh.store[r.Key] = string(r.Value)
		s.digestApply(r.Key, old, string(r.Value), had, true)
		resp := &wire.Response{Tag: wire.RespOK, ID: r.ID}
		tick := seal(resp)
		sh.lock.Unlock()
		return resp, tick
	case wire.VerbSetV:
		if err := validateKey(r.Key); err != nil {
			return errResp(err.Error()), nil
		}
		in, _, _, err := version.Decode(string(r.Value))
		if err != nil {
			// An unstamped SETV payload can neither be compared nor later
			// compete against stamped values: reject, apply nothing.
			return errResp("setv: " + err.Error()), nil
		}
		sh := s.shardFor(r.Key)
		sh.lock.Lock()
		cur, had := sh.store[r.Key]
		apply, code := setvOutcome(cur, had, in)
		resp := &wire.Response{Tag: wire.RespCount, ID: r.ID, N: code}
		var tick *wal.Ticket
		if apply {
			sh.store[r.Key] = string(r.Value)
			s.digestApply(r.Key, cur, string(r.Value), had, true)
			// Logged (as a plain set — replay needs no version logic, the
			// compare already happened) only when something changed: a
			// rejected SETV must not dirty the log.
			tick = seal(resp)
		} else if record != nil {
			record(resp)
		}
		sh.lock.Unlock()
		return resp, tick
	case wire.VerbDel:
		if validateKey(r.Key) != nil {
			// No valid SET can have stored this key, so it cannot exist —
			// and logging it would write a record replay refuses to decode
			// (the text protocol can produce such keys; the wire decoder
			// cannot). Nothing changes, so nothing is logged.
			return &wire.Response{Tag: wire.RespNotFound, ID: r.ID}, nil
		}
		sh := s.shardFor(r.Key)
		sh.lock.Lock()
		old, ok := sh.store[r.Key]
		delete(sh.store, r.Key)
		if ok {
			s.digestApply(r.Key, old, "", true, false)
		}
		resp := &wire.Response{Tag: wire.RespOK, ID: r.ID}
		if !ok {
			// NOTFOUND deletes are logged too: replay must walk the same
			// state sequence the live run did, and a retried DEL must
			// replay the same answer.
			resp = &wire.Response{Tag: wire.RespNotFound, ID: r.ID}
		}
		tick := seal(resp)
		sh.lock.Unlock()
		return resp, tick
	case wire.VerbMDel:
		for _, k := range r.Keys {
			if k == "" {
				// A zero-length key would poison the log: replay rejects it
				// as corruption. The wire decoder already refuses it.
				return errResp("zero-length key"), nil
			}
		}
		unlock := s.lockShardSet(r.Keys)
		n := uint64(0)
		for _, k := range r.Keys {
			sh := s.shardFor(k)
			if old, ok := sh.store[k]; ok {
				delete(sh.store, k)
				s.digestApply(k, old, "", true, false)
				n++
			}
		}
		resp := &wire.Response{Tag: wire.RespCount, ID: r.ID, N: n}
		tick := seal(resp)
		unlock()
		return resp, tick
	case wire.VerbMPut:
		for _, kv := range r.Pairs {
			if err := validateKey(kv.Key); err != nil {
				return errResp(err.Error()), nil
			}
		}
		keys := make([]string, 0, len(r.Pairs))
		for _, kv := range r.Pairs {
			keys = append(keys, kv.Key)
		}
		unlock := s.lockShardSet(keys)
		for _, kv := range r.Pairs {
			st := s.shardFor(kv.Key).store
			old, had := st[kv.Key]
			st[kv.Key] = string(kv.Value)
			s.digestApply(kv.Key, old, string(kv.Value), had, true)
		}
		resp := &wire.Response{Tag: wire.RespCount, ID: r.ID, N: uint64(len(r.Pairs))}
		tick := seal(resp)
		unlock()
		return resp, tick
	}
	return errResp("not a mutating verb: " + wire.VerbName(r.Verb)), nil
}

// applyBinary is the verb dispatch. Keys obey the same rules as the
// text protocol (the store is shared across protocols and keys surface
// in text KEYS responses); values are opaque bytes. Mutating verbs
// delegate to applyMutation without dedupe bookkeeping — this is the
// WAL replay path (the log is not yet live during recovery, so the
// ticket is nil) and the dedupe decode fallback (which still waits out
// its fsync).
func (s *Server) applyBinary(r *wire.Request) *wire.Response {
	errResp := func(msg string) *wire.Response {
		return &wire.Response{Tag: wire.RespErr, ID: r.ID, Err: msg}
	}
	switch r.Verb {
	case wire.VerbPing:
		return &wire.Response{Tag: wire.RespOK, ID: r.ID}
	case wire.VerbSet, wire.VerbDel, wire.VerbMDel, wire.VerbMPut, wire.VerbSetV:
		resp, tick := s.applyMutation(0, r, nil)
		if err := s.walWait(tick); err != nil {
			return errResp("durability: " + err.Error())
		}
		return resp
	case wire.VerbTree:
		return s.applyTree(r)
	case wire.VerbScan:
		return s.applyScan(r)
	case wire.VerbGet:
		sh := s.shardFor(r.Key)
		sh.lock.RLock()
		v, ok := sh.store[r.Key]
		sh.lock.RUnlock()
		if !ok {
			return &wire.Response{Tag: wire.RespNotFound, ID: r.ID}
		}
		return &wire.Response{Tag: wire.RespValue, ID: r.ID, Value: []byte(v)}
	case wire.VerbMGet:
		resp := &wire.Response{
			Tag:    wire.RespMulti,
			ID:     r.ID,
			Found:  make([]bool, 0, len(r.Keys)),
			Values: make([][]byte, 0, len(r.Keys)),
		}
		for _, k := range r.Keys {
			sh := s.shardFor(k)
			sh.lock.RLock()
			v, ok := sh.store[k]
			sh.lock.RUnlock()
			resp.Found = append(resp.Found, ok)
			if ok {
				resp.Values = append(resp.Values, []byte(v))
			} else {
				resp.Values = append(resp.Values, nil)
			}
		}
		return resp
	case wire.VerbCount:
		n := uint64(0)
		for i := range s.shards {
			sh := &s.shards[i]
			sh.lock.RLock()
			n += uint64(len(sh.store))
			sh.lock.RUnlock()
		}
		return &wire.Response{Tag: wire.RespCount, ID: r.ID, N: n}
	case wire.VerbKeys:
		keys := s.sortedKeys()
		return &wire.Response{Tag: wire.RespKeys, ID: r.ID, Keys: keys}
	}
	return errResp("unknown verb " + wire.VerbName(r.Verb))
}
