// Edge-case tests for the wire protocol, written against the public
// surface (package sockets_test) so they can share testutil.StartKV —
// the in-package test files cannot import testutil without a cycle.
package sockets_test

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/sockets"
	"repro/internal/testutil"
)

// rawConn dials the server with no client library in the way, for
// writing deliberately broken bytes.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func roundTrip(t *testing.T, conn net.Conn, req string) string {
	t.Helper()
	if err := sockets.WriteFrame(conn, []byte(req)); err != nil {
		t.Fatalf("write %q: %v", req, err)
	}
	resp, err := sockets.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read response to %q: %v", req, err)
	}
	return string(resp)
}

// TestFramingOversizedValue: a SET whose value pushes the request past
// MaxFrame is rejected client-side before any bytes hit the wire, and
// the connection stays usable for correctly-sized requests — including
// one sized exactly at the limit.
func TestFramingOversizedValue(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	c, err := sockets.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	huge := strings.Repeat("v", sockets.MaxFrame)
	if err := c.Set("k", huge); err == nil {
		t.Fatal("SET with an over-limit value succeeded")
	}
	// "SET k " + value == exactly MaxFrame must still work.
	exact := strings.Repeat("v", sockets.MaxFrame-len("SET k "))
	if err := c.Set("k", exact); err != nil {
		t.Fatalf("SET at exactly the frame limit: %v", err)
	}
	got, found, err := c.Get("k")
	if err != nil || !found || got != exact {
		t.Fatalf("limit-sized value did not round-trip (found=%v err=%v len=%d)", found, err, len(got))
	}
}

// TestFramingHugeLengthHeader: a peer announcing a frame bigger than
// MaxFrame is disconnected without the server attempting the
// allocation, and the server keeps serving other connections.
func TestFramingHugeLengthHeader(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	evil := rawConn(t, s.Addr())

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], sockets.MaxFrame+1)
	if _, err := evil.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	evil.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := sockets.ReadFrame(evil); err == nil {
		t.Fatal("server answered a frame it should have rejected")
	}

	c, err := sockets.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("server unhealthy after oversized header: %v", err)
	}
}

// TestFramingEmbeddedCRLF is the regression test for the value rules on
// both protocols. The text path rejects CR/LF values client-side with a
// typed ErrBadValue — the line-oriented protocol cannot carry them
// safely — and the rejection must not poison the connection. The binary
// path has no such restriction: values are length-prefixed opaque
// bytes, and every payload round-trips byte-for-byte.
func TestFramingEmbeddedCRLF(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	c, err := sockets.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	crlfValues := []string{"line1\r\nline2", "\r\n", "trailing newline\n", "bare\rcr"}
	for _, val := range crlfValues {
		if err := c.Set("k", val); err == nil {
			t.Fatalf("text SET %q succeeded, want ErrBadValue", val)
		} else if !errors.Is(err, sockets.ErrBadValue) {
			t.Fatalf("text SET %q: got %v, want ErrBadValue", val, err)
		}
	}
	// The rejection happens before the wire: the connection stays good.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after rejected values: %v", err)
	}

	// Values without CR/LF — spaces, tabs, NULs — still round-trip on
	// the text path (they always did; frames are length-delimited).
	for i, val := range []string{"  padded  with  spaces  ", "tabs\tand\x00nul"} {
		key := string(rune('a' + i))
		if err := c.Set(key, val); err != nil {
			t.Fatalf("text SET %q: %v", val, err)
		}
		got, found, err := c.Get(key)
		if err != nil || !found || got != val {
			t.Errorf("text value corrupted: sent %q, got %q (found=%v err=%v)", val, got, found, err)
		}
	}

	// The binary protocol lifts the restriction entirely.
	p, err := sockets.NewPool(s.Addr(), sockets.PoolConfig{Proto: sockets.ProtoBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i, val := range append(crlfValues, "  spaces  ", "nul\x00s", "") {
		key := "bin-" + string(rune('a'+i))
		if err := p.Set(key, val); err != nil {
			t.Fatalf("binary SET %q: %v", val, err)
		}
		got, found, err := p.Get(key)
		if err != nil || !found || got != val {
			t.Errorf("binary value corrupted: sent %q, got %q (found=%v err=%v)", val, got, found, err)
		}
	}
}

// TestFramingServerRejectsCRLFValue: the CR/LF value rule holds on the
// server side too — a hand-rolled text client that skips the library's
// ErrBadValue check gets ERR back, and nothing lands in the store. The
// client-side check alone would leave raw writers able to smuggle
// protocol-shaped text into values other consumers read back.
func TestFramingServerRejectsCRLFValue(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	conn := rawConn(t, s.Addr())

	for _, req := range []string{"SET k a\r\nb", "SET k \rcr", "SET k nl\n"} {
		if resp := roundTrip(t, conn, req); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("raw %q: got %q, want ERR...", req, resp)
		}
	}
	if resp := roundTrip(t, conn, "GET k"); resp != "NOTFOUND" {
		t.Errorf("rejected SET reached the store: GET k = %q", resp)
	}
	// The rejection is per-request: the connection keeps serving.
	if resp := roundTrip(t, conn, "SET k clean"); resp != "OK" {
		t.Errorf("connection unusable after rejected values: %q", resp)
	}
}

// TestFramingTruncatedMDel: a client that dies mid-frame (the header
// promises more bytes than ever arrive) must not wedge the server or
// corrupt the store visible to other clients.
func TestFramingTruncatedMDel(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	c, err := sockets.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, k := range []string{"alpha", "beta"} {
		if err := c.Set(k, "v"); err != nil {
			t.Fatal(err)
		}
	}

	dead := rawConn(t, s.Addr())
	payload := []byte("MDEL alpha beta")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload))+64) // promise more than we send
	if _, err := dead.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := dead.Write(payload); err != nil {
		t.Fatal(err)
	}
	dead.Close() // die mid-frame

	// The half-frame must have had no effect; the server keeps serving.
	for _, k := range []string{"alpha", "beta"} {
		got, found, err := c.Get(k)
		if err != nil || !found || got != "v" {
			t.Fatalf("key %q damaged by truncated MDEL: found=%v err=%v got=%q", k, found, err, got)
		}
	}
}

// TestFramingMalformedCommandsConnectionSurvives: protocol errors are
// answered with ERR on the same connection — one bad command must not
// poison the session for the requests after it.
func TestFramingMalformedCommandsConnectionSurvives(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	conn := rawConn(t, s.Addr())

	for _, bad := range []string{
		"",
		"BOGUS",
		"SET onlykey",
		"GET",
		"GET too many args",
		"MDEL",
		"set lower case works? SplitN says the verb is \"set\"",
	} {
		resp := roundTrip(t, conn, bad)
		if bad == "set lower case works? SplitN says the verb is \"set\"" {
			// ToUpper on the verb makes lowercase legal; it's a valid SET.
			if resp != "OK" {
				t.Errorf("lowercase set: got %q, want OK", resp)
			}
			continue
		}
		if !strings.HasPrefix(resp, "ERR") {
			t.Errorf("malformed %q: got %q, want ERR...", bad, resp)
		}
	}
	if resp := roundTrip(t, conn, "PING"); resp != "PONG" {
		t.Fatalf("connection dead after malformed commands: got %q", resp)
	}
	if got := s.Stats().Errors; got < 5 {
		t.Errorf("server error counter = %d, want >= 5", got)
	}
}

// TestFramingZeroLengthFrame: an empty frame is a legal frame carrying
// an empty (hence unknown) command, not a connection-killer.
func TestFramingZeroLengthFrame(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	conn := rawConn(t, s.Addr())
	if resp := roundTrip(t, conn, ""); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("empty frame: got %q, want ERR...", resp)
	}
	if resp := roundTrip(t, conn, "PING"); resp != "PONG" {
		t.Fatalf("connection dead after empty frame: got %q", resp)
	}
}
