// Package sockets implements the TCP client-server content of Table II
// ("TCP-IP sockets") and the CS87 socket lab: a length-prefixed framing
// protocol, a concurrent in-memory key-value server with one goroutine
// per connection, and client libraries — the request/response structure
// students build in C, over real loopback sockets.
//
// The server has grown from the lab's single-map toy into a hardened
// serving layer: the store is sharded across N stripes each guarded by
// its own readers-writer lock (keyed by the same FNV-1a hash as
// mapreduce.Partition), Close drains in-flight requests before hard-
// closing connections, and per-server counters plus a latency histogram
// (metrics.Histogram) make throughput studies measurable. Pool adds a
// production-shaped client: a fixed-size connection pool with
// per-request deadlines and bounded, jittered retry.
package sockets

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/pthread"
	"repro/internal/sockets/wire"
	"repro/internal/wal"
)

// MaxFrame bounds a single message to keep malformed peers from forcing
// huge allocations.
const MaxFrame = 1 << 20

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("sockets: frame of %d exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("sockets: frame of %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Stats counts activity. A Server fills Connections, Requests, and
// Errors; a Pool fills Requests, Errors, and Retries.
type Stats struct {
	Connections int64 // connections accepted (server)
	Requests    int64 // requests handled (server) or issued (pool)
	Errors      int64 // ERR responses sent (server) or failed attempts (pool)
	Retries     int64 // attempts re-sent after transport errors (pool)
}

// ServerConfig parameterizes a server.
type ServerConfig struct {
	// Shards is the number of store stripes, each guarded by its own
	// readers-writer lock so concurrent traffic on different keys does
	// not serialize on one global lock. 1 reproduces the original
	// single-lock server. Default 16.
	Shards int
	// DrainTimeout bounds how long Close waits for in-flight requests
	// before hard-closing their connections. Default 5s.
	DrainTimeout time.Duration
	// PreHandle, when non-nil, runs before each request is interpreted —
	// the hook tests and benches use to make requests observably
	// in-flight or a node deliberately slow (the laggard in the
	// quorum-abort experiments).
	PreHandle func(req string)
	// MaxPending bounds how many admitted requests may be outstanding
	// across all connections before the server sheds new arrivals with an
	// overload response instead of queueing them — per-node admission
	// control, so a hot node degrades to bounded latency plus explicit
	// pushback rather than unbounded queueing collapse. PING is exempt
	// (heartbeats must survive overload or the failure detector declares
	// the node dead and makes things worse). 0 disables shedding; the
	// pending-depth gauge still tracks.
	MaxPending int
	// WALDir, when non-empty, makes the server durable: every mutation
	// is appended to a write-ahead log in this directory — and fsynced,
	// through the group committer — before its response is released, and
	// startup replays whatever a previous incarnation logged there
	// (snapshot plus log tail, retry-dedupe recordings included). Empty
	// keeps the original memory-only server.
	WALDir string
	// WALSegmentBytes overrides the log's segment size (wal.Config).
	WALSegmentBytes int64
	// WALSnapshotEvery is how many logged mutations accumulate before
	// the server compacts a snapshot and truncates old segments.
	// Default 10000.
	WALSnapshotEvery int
	// WALReplayWorkers sets startup recovery's replay fan-out: 0 defaults
	// to the machine's CPU count (records partitioned by key stripe,
	// per-key order preserved — see wal.Config.ReplayWorkers), 1 forces
	// the serial replay path.
	WALReplayWorkers int
	// WALScrubInterval, when positive on a durable server, runs a
	// background scrub pass every interval: sealed segments and the
	// snapshot are re-read and their CRCs re-checked, so at-rest
	// corruption is found while healthy replicas can still repair it.
	// Zero disables scrubbing.
	WALScrubInterval time.Duration
	// WALScrubCorrupt, when non-nil, is called once — from the scrub
	// goroutine, the first time a pass finds corruption — with the
	// failure. The cluster wires it to its event tap.
	WALScrubCorrupt func(error)
	// SyncExcludePrefix, when non-empty, keeps keys with this prefix out
	// of the anti-entropy Merkle digest and SCAN responses. The cluster
	// sets it to its hint-key prefix: parked hints are per-holder state
	// by design, and folding them into the digest would make healthy
	// replicas look permanently divergent.
	SyncExcludePrefix string
}

// shard is one stripe of the store.
type shard struct {
	lock  *pthread.RWLock
	store map[string]string
}

// connState tracks one accepted connection so Close can distinguish
// idle connections (safe to cut immediately) from in-flight requests
// (drained until DrainTimeout). inflight is a count, not a flag: a
// pipelined binary connection can have many requests in flight at once.
type connState struct {
	conn     net.Conn
	mu       sync.Mutex
	fw       *frameWriter // binary conns: response writer, flushed before Close cuts the conn
	inflight int
	closing  bool
}

// addInflight adjusts the in-flight count and reports whether the
// connection has been told to close.
func (cs *connState) addInflight(d int) (closing bool) {
	cs.mu.Lock()
	cs.inflight += d
	closing = cs.closing
	cs.mu.Unlock()
	return closing
}

// Server is the concurrent key-value server.
type Server struct {
	ln     net.Listener
	shards []shard
	drain  time.Duration

	conns    sync.WaitGroup
	closed   atomic.Bool
	mu       sync.Mutex
	active   map[*connState]struct{}
	connSeen atomic.Int64
	reqSeen  atomic.Int64
	errSeen  atomic.Int64
	dedupHit atomic.Int64
	latency  *metrics.Histogram

	// Admission control: pending counts admitted-but-unanswered requests
	// across all connections; maxPending > 0 sheds past the bound (see
	// admission.go). verbLat has a fixed key set from construction on, so
	// it is read without locks.
	maxPending  int
	pending     atomic.Int64
	pendingPeak atomic.Int64
	shedSeen    atomic.Int64
	verbLat     map[string]*metrics.Histogram

	// dedupe remembers recent mutating binary PDUs by (client ID,
	// correlation ID) so a retry of an op whose response was lost in
	// transit replays the recorded answer instead of applying twice.
	dedupe *dedupeTable

	// Durability (nil wal = memory-only). walSince counts mutations
	// logged since the last snapshot; snapInFlight single-flights the
	// compaction goroutine, which walWG joins on shutdown.
	wal           *wal.Log
	walEvery      int64
	walSince      atomic.Int64
	snapInFlight  atomic.Bool
	walWG         sync.WaitGroup
	recoveredKeys int

	// Background scrub (syncwal.go): scrubStop ends the loop, scrubAlarm
	// latches the one-shot corruption callback, syncSkipped counts log
	// frames too large for a SYNCWAL dump chunk.
	scrubStop   chan struct{}
	scrubOnce   sync.Once
	scrubAlarm  atomic.Bool
	syncSkipped atomic.Int64

	// preHandle, when non-nil, runs before each request is interpreted —
	// a test hook for making requests observably in-flight.
	preHandle func(req string)

	// digest is the anti-entropy Merkle digest, maintained incrementally
	// under the same shard locks that order mutations; syncExclude keys
	// (hints) stay out of it. Served by the TREE and SCAN verbs.
	digest      merkle.Tree
	syncExclude string
}

// NewServer starts a server with the default configuration on addr
// ("127.0.0.1:0" picks a free port).
func NewServer(addr string) (*Server, error) {
	return NewServerConfig(addr, ServerConfig{})
}

// NewServerConfig starts a server with an explicit configuration.
func NewServerConfig(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:          ln,
		shards:      make([]shard, cfg.Shards),
		drain:       cfg.DrainTimeout,
		active:      make(map[*connState]struct{}),
		latency:     metrics.NewHistogram(),
		dedupe:      newDedupeTable(dedupeCap, dedupeRetryHorizon),
		preHandle:   cfg.PreHandle,
		maxPending:  cfg.MaxPending,
		syncExclude: cfg.SyncExcludePrefix,
		verbLat:     make(map[string]*metrics.Histogram, len(serverVerbs)),
	}
	for _, v := range serverVerbs {
		s.verbLat[v] = metrics.NewHistogram()
	}
	for i := range s.shards {
		s.shards[i] = shard{lock: pthread.NewRWLock(pthread.PreferWriters), store: make(map[string]string)}
	}
	if cfg.WALDir != "" {
		// Recovery runs to completion before the accept loop starts:
		// no live request can observe a half-replayed store.
		if err := s.openWAL(cfg); err != nil {
			ln.Close()
			return nil, err
		}
		if cfg.WALScrubInterval > 0 {
			s.startScrub(cfg.WALScrubInterval, cfg.WALScrubCorrupt)
		}
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Connections: s.connSeen.Load(),
		Requests:    s.reqSeen.Load(),
		Errors:      s.errSeen.Load(),
	}
}

// Latency returns the per-request latency histogram (read-complete to
// response-written).
func (s *Server) Latency() *metrics.Histogram { return s.latency }

// shardFor maps a key to its stripe with the same FNV-1a hash
// mapreduce.Partition uses for reduce buckets.
func (s *Server) shardFor(key string) *shard {
	return &s.shards[s.shardIndex(key)]
}

// shardIndex is shardFor's stripe index.
func (s *Server) shardIndex(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32() % uint32(len(s.shards))
}

// lockShardSet write-locks every stripe the keys hash to — each once,
// in ascending index order, the global order that keeps concurrent
// multi-key mutations deadlock-free against each other (single-key
// paths hold one stripe and nest nothing) — and returns the matching
// unlock. Multi-key mutations hold all their stripes across apply and
// WAL enqueue so their log record cannot interleave with a competing
// writer's on any of the touched keys; see applyMutation.
func (s *Server) lockShardSet(keys []string) (unlock func()) {
	hit := make([]bool, len(s.shards))
	for _, k := range keys {
		hit[s.shardIndex(k)] = true
	}
	idx := make([]int, 0, len(s.shards))
	for i, b := range hit {
		if b {
			idx = append(idx, i)
		}
	}
	for _, i := range idx {
		s.shards[i].lock.Lock()
	}
	return func() {
		for j := len(idx) - 1; j >= 0; j-- {
			s.shards[idx[j]].lock.Unlock()
		}
	}
}

// Close stops accepting, drains in-flight requests for up to the
// configured DrainTimeout, then hard-closes whatever remains. Idle
// connections are cut immediately.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.ln.Close()
	s.mu.Lock()
	for cs := range s.active {
		cs.mu.Lock()
		cs.closing = true
		if cs.inflight == 0 {
			if cs.fw != nil {
				// A binary conn with nothing in flight can still hold
				// completed responses in its coalescing writer; flush them
				// before cutting. stop blocks until drained, so it runs off
				// this goroutine — a flush wedged on a dead peer is unstuck
				// by the DrainTimeout hard close below.
				go func(cs *connState) { cs.fw.stop(); cs.conn.Close() }(cs)
			} else {
				cs.conn.Close()
			}
		}
		cs.mu.Unlock()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.conns.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.drain):
		s.mu.Lock()
		for cs := range s.active {
			cs.conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	if s.wal != nil {
		// After the drain no handler can append; join any in-flight
		// snapshot or scrub pass, then stop the committer. A Restart that
		// reopens the same directory must not race a straggling compaction.
		s.stopScrub()
		s.walWG.Wait()
		if werr := s.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connSeen.Add(1)
		cs := &connState{conn: conn}
		// Register under the same lock Close drains under, and check
		// closed inside it: a connection accepted in the instant before
		// the listener died must either be fully registered before Close
		// starts waiting (its Add happens-before the Wait) or be dropped
		// here — an unsynchronized Add could race a Wait already at zero.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.active[cs] = struct{}{}
		s.conns.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.conns.Done()
			defer func() {
				s.mu.Lock()
				delete(s.active, cs)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serve(cs)
		}()
	}
}

// serve negotiates the protocol from the connection's first byte and
// hands off to the matching loop. Text frames always open with 0x00
// (the high byte of a u32 length far below 2^24), so wire.Magic is
// unambiguous; see the wire package comment.
func (s *Server) serve(cs *connState) {
	br := bufio.NewReader(cs.conn)
	first, err := br.Peek(1)
	if err != nil {
		return // closed before a single byte: nothing to serve
	}
	if first[0] == wire.Magic {
		br.ReadByte() //nolint:errcheck // the peeked magic byte
		s.serveBinary(cs, br)
		return
	}
	s.serveText(cs, br)
}

// serveText is the legacy loop: one request in flight per connection,
// strictly in-order responses.
func (s *Server) serveText(cs *connState, br *bufio.Reader) {
	for {
		req, err := ReadFrame(br)
		if err != nil {
			return // EOF, broken pipe, or cut by Close: client done
		}
		cs.addInflight(1)
		s.reqSeen.Add(1)
		verb := textVerb(string(req))
		if verb != "PING" && !s.admit() {
			// Shed before PreHandle and before any store work: an
			// overloaded node must answer in O(1), or the pushback itself
			// queues behind the load it is pushing back on.
			werr := WriteFrame(cs.conn, []byte(textOverload))
			closing := cs.addInflight(-1)
			if werr != nil || closing || s.closed.Load() {
				return
			}
			continue
		}
		start := time.Now()
		if s.preHandle != nil {
			s.preHandle(string(req))
		}
		resp := s.handle(string(req))
		if strings.HasPrefix(resp, "ERR") {
			s.errSeen.Add(1)
		}
		werr := WriteFrame(cs.conn, []byte(resp))
		if verb != "PING" {
			s.release()
		}
		d := time.Since(start)
		s.latency.Observe(d)
		s.observeVerb(verb, d)
		closing := cs.addInflight(-1)
		if werr != nil || closing || s.closed.Load() {
			return
		}
	}
}

// textVerb extracts a text request's command word, uppercased the way
// handle matches it.
func textVerb(req string) string {
	if i := strings.IndexByte(req, ' '); i >= 0 {
		req = req[:i]
	}
	return strings.ToUpper(req)
}

// handle interprets one request. Protocol (space-delimited within one
// frame; values may contain spaces, keys may not):
//
//	PING             -> "PONG"
//	SET key value    -> "OK" (values with CR/LF rejected with ERR; see ErrBadValue)
//	GET key          -> "VALUE <v>" or "NOTFOUND"
//	DEL key          -> "OK" or "NOTFOUND"
//	MDEL k1 k2 ...   -> "DELETED <n>" (n = how many existed; missing keys ignored)
//	COUNT            -> "COUNT <n>"
//	KEYS             -> "KEYS <k1> <k2> ..." (sorted; bare "KEYS" when empty)
//	SETV key value   -> "SETV <code>" (version-conditional set; see the SetV* outcome codes)
//	TREE lo-hi ...   -> "HASHES <h> ..." (one 16-hex-digit Merkle range hash per span)
//	SCAN lo-hi ...   -> "SCAN <key> <h> ..." (key + entry hash per stored key in the spans)
func (s *Server) handle(req string) string {
	parts := strings.SplitN(req, " ", 3)
	switch strings.ToUpper(parts[0]) {
	case "PING":
		return "PONG"
	case "SET":
		if len(parts) != 3 {
			return "ERR usage: SET key value"
		}
		if validateTextValue(parts[2]) != nil {
			// Mirror the client-side ErrBadValue check: a hand-rolled text
			// client must not smuggle CR/LF into the shared store either.
			return "ERR value must not contain CR or LF (use the binary protocol for opaque bytes)"
		}
		// applyMutation applies and reserves the log position under the
		// shard lock (log order = apply order), then the fsync wait runs
		// here, before the ack leaves. Client 0 marks a text-protocol
		// mutation, which carries no dedupe identity. Key validation now
		// also guards the log: "SET  v" (empty key) used to store a key
		// replay refuses to decode.
		resp, tick := s.applyMutation(0, &wire.Request{Verb: wire.VerbSet, Key: parts[1], Value: []byte(parts[2])}, nil)
		if resp.Tag == wire.RespErr {
			return "ERR " + resp.Err
		}
		if err := s.walWait(tick); err != nil {
			return "ERR durability: " + err.Error()
		}
		return "OK"
	case "GET":
		if len(parts) != 2 {
			return "ERR usage: GET key"
		}
		sh := s.shardFor(parts[1])
		sh.lock.RLock()
		v, ok := sh.store[parts[1]]
		sh.lock.RUnlock()
		if !ok {
			return "NOTFOUND"
		}
		return "VALUE " + v
	case "DEL":
		if len(parts) != 2 {
			return "ERR usage: DEL key"
		}
		// NOTFOUND deletes are logged too: replay must walk the same
		// state sequence the live run did, not a guess at which deletes
		// mattered. (A DEL of an invalid key — "DEL " — changes nothing,
		// answers NOTFOUND, and is not logged: its record would poison
		// replay.)
		resp, tick := s.applyMutation(0, &wire.Request{Verb: wire.VerbDel, Key: parts[1]}, nil)
		if err := s.walWait(tick); err != nil {
			return "ERR durability: " + err.Error()
		}
		if resp.Tag == wire.RespNotFound {
			return "NOTFOUND"
		}
		return "OK"
	case "MDEL":
		// Bulk delete, one frame for many keys — what cluster migration
		// uses to clear moved arcs without a round trip per key.
		keys := strings.Fields(req)[1:]
		if len(keys) == 0 {
			return "ERR usage: MDEL key [key ...]"
		}
		resp, tick := s.applyMutation(0, &wire.Request{Verb: wire.VerbMDel, Keys: keys}, nil)
		if resp.Tag == wire.RespErr {
			return "ERR " + resp.Err
		}
		if err := s.walWait(tick); err != nil {
			return "ERR durability: " + err.Error()
		}
		return fmt.Sprintf("DELETED %d", resp.N)
	case "SETV":
		if len(parts) != 3 {
			return "ERR usage: SETV key value"
		}
		if validateTextValue(parts[2]) != nil {
			return "ERR value must not contain CR or LF (use the binary protocol for opaque bytes)"
		}
		resp, tick := s.applyMutation(0, &wire.Request{Verb: wire.VerbSetV, Key: parts[1], Value: []byte(parts[2])}, nil)
		if resp.Tag == wire.RespErr {
			return "ERR " + resp.Err
		}
		if err := s.walWait(tick); err != nil {
			return "ERR durability: " + err.Error()
		}
		return fmt.Sprintf("SETV %d", resp.N)
	case "TREE", "SCAN":
		spans, err := parseTextSpans(strings.Fields(req)[1:])
		if err != nil {
			return "ERR " + err.Error()
		}
		if strings.ToUpper(parts[0]) == "TREE" {
			resp := s.applyTree(&wire.Request{Verb: wire.VerbTree, Spans: spans})
			out := make([]string, 0, len(resp.Hashes)+1)
			out = append(out, "HASHES")
			for _, h := range resp.Hashes {
				out = append(out, fmt.Sprintf("%016x", h))
			}
			return strings.Join(out, " ")
		}
		resp := s.applyScan(&wire.Request{Verb: wire.VerbScan, Spans: spans})
		out := make([]string, 0, 2*len(resp.Scan)+1)
		out = append(out, "SCAN")
		for _, e := range resp.Scan {
			out = append(out, e.Key, fmt.Sprintf("%016x", e.Hash))
		}
		return strings.Join(out, " ")
	case "COUNT":
		// Shards are read-locked one at a time, so the count is a
		// point-in-time sum per stripe, not an atomic global snapshot.
		n := 0
		for i := range s.shards {
			sh := &s.shards[i]
			sh.lock.RLock()
			n += len(sh.store)
			sh.lock.RUnlock()
		}
		return fmt.Sprintf("COUNT %d", n)
	case "KEYS":
		keys := s.sortedKeys()
		if len(keys) == 0 {
			return "KEYS"
		}
		return "KEYS " + strings.Join(keys, " ")
	default:
		return "ERR unknown command"
	}
}

// sortedKeys snapshots every stored key in sorted order, read-locking
// one stripe at a time (point-in-time per stripe, like COUNT).
func (s *Server) sortedKeys() []string {
	var keys []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.RLock()
		for k := range sh.store {
			keys = append(keys, k)
		}
		sh.lock.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// ErrServer wraps protocol-level errors from the server.
var ErrServer = errors.New("sockets: server error")

// ErrBadKey rejects keys that would corrupt the space-delimited command
// syntax (empty keys or keys containing whitespace).
var ErrBadKey = errors.New("sockets: key must be non-empty and contain no whitespace")

// ErrBadValue rejects values the line-oriented text protocol cannot
// carry: CR or LF would let one request masquerade as protocol text in
// logs, multi-line tooling, and any consumer that treats the payload as
// lines — and historically desynchronized line-based readers. The
// binary protocol has no such restriction (values are length-prefixed
// opaque bytes); use PoolConfig.Proto = ProtoBinary to store arbitrary
// payloads.
var ErrBadValue = errors.New("sockets: text-protocol value must not contain CR or LF (use the binary protocol for opaque bytes)")

func validateKey(key string) error {
	if key == "" || strings.ContainsAny(key, " \t\n\r") {
		return fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	return nil
}

// validateTextValue applies the text path's value restriction, on both
// sides of the wire: the text round-trippers reject before writing, and
// the server's SET branch rejects hand-rolled clients that skip the
// client library. The binary path carries opaque bytes.
func validateTextValue(value string) error {
	if strings.ContainsAny(value, "\r\n") {
		return fmt.Errorf("%w: %q", ErrBadValue, value)
	}
	return nil
}

// roundTripper issues one request and returns the raw response; Client
// and Pool both satisfy it, sharing the command parsers below.
type roundTripper func(req string) (string, error)

func doPing(rt roundTripper) error {
	resp, err := rt("PING")
	if err != nil {
		return err
	}
	if resp != "PONG" {
		return fmt.Errorf("%w: %s", ErrServer, resp)
	}
	return nil
}

func doSet(rt roundTripper, key, value string) error {
	if err := validateKey(key); err != nil {
		return err
	}
	if err := validateTextValue(value); err != nil {
		return err
	}
	resp, err := rt("SET " + key + " " + value)
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("%w: %s", ErrServer, resp)
	}
	return nil
}

func doGet(rt roundTripper, key string) (value string, found bool, err error) {
	if err := validateKey(key); err != nil {
		return "", false, err
	}
	resp, err := rt("GET " + key)
	if err != nil {
		return "", false, err
	}
	switch {
	case resp == "NOTFOUND":
		return "", false, nil
	case strings.HasPrefix(resp, "VALUE "):
		return strings.TrimPrefix(resp, "VALUE "), true, nil
	}
	return "", false, fmt.Errorf("%w: %s", ErrServer, resp)
}

func doDel(rt roundTripper, key string) (bool, error) {
	if err := validateKey(key); err != nil {
		return false, err
	}
	resp, err := rt("DEL " + key)
	if err != nil {
		return false, err
	}
	switch resp {
	case "OK":
		return true, nil
	case "NOTFOUND":
		return false, nil
	}
	return false, fmt.Errorf("%w: %s", ErrServer, resp)
}

// mdelChunkBytes bounds one MDEL request's payload so bulk deletes of
// arbitrarily many keys never hit the MaxFrame limit.
const mdelChunkBytes = 64 << 10

func doMDel(rt roundTripper, keys []string) (int, error) {
	for _, k := range keys {
		if err := validateKey(k); err != nil {
			return 0, err
		}
	}
	deleted := 0
	for len(keys) > 0 {
		// Take the longest prefix of keys that fits one chunk.
		n, bytes := 0, len("MDEL")
		for n < len(keys) && (n == 0 || bytes+1+len(keys[n]) <= mdelChunkBytes) {
			bytes += 1 + len(keys[n])
			n++
		}
		resp, err := rt("MDEL " + strings.Join(keys[:n], " "))
		if err != nil {
			return deleted, err
		}
		var d int
		if _, err := fmt.Sscanf(resp, "DELETED %d", &d); err != nil {
			return deleted, fmt.Errorf("%w: %s", ErrServer, resp)
		}
		deleted += d
		keys = keys[n:]
	}
	return deleted, nil
}

func doCount(rt roundTripper) (int, error) {
	resp, err := rt("COUNT")
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(resp, "COUNT %d", &n); err != nil {
		return 0, fmt.Errorf("%w: %s", ErrServer, resp)
	}
	return n, nil
}

func doKeys(rt roundTripper) ([]string, error) {
	resp, err := rt("KEYS")
	if err != nil {
		return nil, err
	}
	if resp != "KEYS" && !strings.HasPrefix(resp, "KEYS ") {
		return nil, fmt.Errorf("%w: %s", ErrServer, resp)
	}
	return strings.Fields(resp)[1:], nil
}

// Client is a single connection to the KV server. Like Pool, every
// operation has a context-first core; the ctx-less methods wrap
// context.Background().
type Client struct {
	conn net.Conn
	mu   sync.Mutex // one request/response in flight per client
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	return DialCtx(context.Background(), addr)
}

// DialCtx connects to a server under ctx, so a caller that gives up
// mid-dial gets its wrapped ctx error instead of waiting out the
// transport.
func DialCtx(ctx context.Context, addr string) (*Client, error) {
	conn, err := dialCtx(ctx, addr, 0)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req string) (string, error) {
	return c.roundTripCtx(context.Background(), req)
}

// rt adapts the ctx core to the shared command parsers.
func (c *Client) rt(ctx context.Context) roundTripper {
	return func(req string) (string, error) { return c.roundTripCtx(ctx, req) }
}

// roundTripCtx sends one request and reads one response under ctx: the
// connection deadline tracks the ctx deadline, and a cancellation wakes
// a blocked write/read immediately. After an interrupted round trip the
// connection is in an unknown framing state, so a ctx-failed Client is
// only good for Close — the Pool, which discards broken connections, is
// the client to use when requests outlive their callers routinely.
func (c *Client) roundTripCtx(ctx context.Context, req string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", fmt.Errorf("sockets: request aborted before writing: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	if done := ctx.Done(); done != nil {
		watch := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-done:
				c.conn.SetDeadline(aLongTimeAgo)
			case <-watch:
			}
		}()
		// Join the watchdog before returning so a late cancellation
		// cannot rewind the deadline under the next round trip.
		defer func() { close(watch); <-exited }()
	}
	wrap := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("sockets: request interrupted: %w", cerr)
		}
		// The only deadline on this connection is the ctx's, so an I/O
		// timeout IS the ctx deadline expiring — the read can wake a
		// hair before ctx.Err() flips.
		var nerr net.Error
		if _, hasDL := ctx.Deadline(); hasDL && errors.As(err, &nerr) && nerr.Timeout() {
			return fmt.Errorf("sockets: request stopped by ctx deadline: %w", context.DeadlineExceeded)
		}
		return err
	}
	if err := WriteFrame(c.conn, []byte(req)); err != nil {
		return "", wrap(err)
	}
	resp, err := ReadFrame(c.conn)
	if err != nil {
		return "", wrap(err)
	}
	return string(resp), nil
}

// Ping checks liveness.
func (c *Client) Ping() error { return doPing(c.roundTrip) }

// PingCtx checks liveness under ctx.
func (c *Client) PingCtx(ctx context.Context) error { return doPing(c.rt(ctx)) }

// Set stores key = value. Keys containing whitespace are rejected with
// ErrBadKey before touching the wire.
func (c *Client) Set(key, value string) error { return doSet(c.roundTrip, key, value) }

// SetCtx stores key = value under ctx.
func (c *Client) SetCtx(ctx context.Context, key, value string) error {
	return doSet(c.rt(ctx), key, value)
}

// Get fetches a value; found is false for missing keys.
func (c *Client) Get(key string) (value string, found bool, err error) {
	return doGet(c.roundTrip, key)
}

// GetCtx fetches a value under ctx; found is false for missing keys.
func (c *Client) GetCtx(ctx context.Context, key string) (value string, found bool, err error) {
	return doGet(c.rt(ctx), key)
}

// Del removes a key, reporting whether it existed.
func (c *Client) Del(key string) (bool, error) { return doDel(c.roundTrip, key) }

// DelCtx removes a key under ctx, reporting whether it existed.
func (c *Client) DelCtx(ctx context.Context, key string) (bool, error) {
	return doDel(c.rt(ctx), key)
}

// MDel bulk-deletes keys, returning how many existed. Requests are
// chunked so any number of keys stays under the frame limit; zero keys
// is a no-op.
func (c *Client) MDel(keys ...string) (int, error) { return doMDel(c.roundTrip, keys) }

// MDelCtx bulk-deletes keys under ctx.
func (c *Client) MDelCtx(ctx context.Context, keys ...string) (int, error) {
	return doMDel(c.rt(ctx), keys)
}

// Count returns the number of stored keys.
func (c *Client) Count() (int, error) { return doCount(c.roundTrip) }

// CountCtx returns the number of stored keys under ctx.
func (c *Client) CountCtx(ctx context.Context) (int, error) { return doCount(c.rt(ctx)) }

// Keys returns all stored keys in sorted order.
func (c *Client) Keys() ([]string, error) { return doKeys(c.roundTrip) }

// KeysCtx returns all stored keys in sorted order under ctx.
func (c *Client) KeysCtx(ctx context.Context) ([]string, error) { return doKeys(c.rt(ctx)) }
