// Package sockets implements the TCP client-server content of Table II
// ("TCP-IP sockets") and the CS87 socket lab: a length-prefixed framing
// protocol, a concurrent in-memory key-value server with one goroutine
// per connection, and a client library — the request/response structure
// students build in C, over real loopback sockets.
package sockets

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/pthread"
)

// MaxFrame bounds a single message to keep malformed peers from forcing
// huge allocations.
const MaxFrame = 1 << 20

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("sockets: frame of %d exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("sockets: frame of %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Stats counts server activity.
type Stats struct {
	Connections int64
	Requests    int64
}

// Server is the concurrent key-value server.
type Server struct {
	ln    net.Listener
	store map[string]string
	lock  *pthread.RWLock

	conns    sync.WaitGroup
	closed   atomic.Bool
	stats    Stats
	connSeen atomic.Int64
	reqSeen  atomic.Int64
}

// NewServer starts a server on addr ("127.0.0.1:0" picks a free port).
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, store: make(map[string]string), lock: pthread.NewRWLock(pthread.PreferWriters)}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{Connections: s.connSeen.Load(), Requests: s.reqSeen.Load()}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.conns.Wait()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connSeen.Add(1)
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return // EOF or broken pipe: client done
		}
		s.reqSeen.Add(1)
		resp := s.handle(string(req))
		if err := WriteFrame(conn, []byte(resp)); err != nil {
			return
		}
	}
}

// handle interprets one request line. Protocol:
//
//	PING             -> "PONG"
//	SET key value    -> "OK"
//	GET key          -> "VALUE <v>" or "NOTFOUND"
//	DEL key          -> "OK" or "NOTFOUND"
//	KEYS             -> "KEYS k1 k2 ..." (sorted by insertion-agnostic order not guaranteed)
func (s *Server) handle(req string) string {
	parts := strings.SplitN(req, " ", 3)
	switch strings.ToUpper(parts[0]) {
	case "PING":
		return "PONG"
	case "SET":
		if len(parts) != 3 {
			return "ERR usage: SET key value"
		}
		s.lock.Lock()
		s.store[parts[1]] = parts[2]
		s.lock.Unlock()
		return "OK"
	case "GET":
		if len(parts) != 2 {
			return "ERR usage: GET key"
		}
		s.lock.RLock()
		v, ok := s.store[parts[1]]
		s.lock.RUnlock()
		if !ok {
			return "NOTFOUND"
		}
		return "VALUE " + v
	case "DEL":
		if len(parts) != 2 {
			return "ERR usage: DEL key"
		}
		s.lock.Lock()
		_, ok := s.store[parts[1]]
		delete(s.store, parts[1])
		s.lock.Unlock()
		if !ok {
			return "NOTFOUND"
		}
		return "OK"
	case "COUNT":
		s.lock.RLock()
		n := len(s.store)
		s.lock.RUnlock()
		return fmt.Sprintf("COUNT %d", n)
	default:
		return "ERR unknown command"
	}
}

// Client is a connection to the KV server.
type Client struct {
	conn net.Conn
	mu   sync.Mutex // one request/response in flight per client
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, []byte(req)); err != nil {
		return "", err
	}
	resp, err := ReadFrame(c.conn)
	if err != nil {
		return "", err
	}
	return string(resp), nil
}

// ErrServer wraps protocol-level errors from the server.
var ErrServer = errors.New("sockets: server error")

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if resp != "PONG" {
		return fmt.Errorf("%w: %s", ErrServer, resp)
	}
	return nil
}

// Set stores key = value.
func (c *Client) Set(key, value string) error {
	resp, err := c.roundTrip(fmt.Sprintf("SET %s %s", key, value))
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("%w: %s", ErrServer, resp)
	}
	return nil
}

// Get fetches a value; found is false for missing keys.
func (c *Client) Get(key string) (value string, found bool, err error) {
	resp, err := c.roundTrip("GET " + key)
	if err != nil {
		return "", false, err
	}
	switch {
	case resp == "NOTFOUND":
		return "", false, nil
	case strings.HasPrefix(resp, "VALUE "):
		return strings.TrimPrefix(resp, "VALUE "), true, nil
	}
	return "", false, fmt.Errorf("%w: %s", ErrServer, resp)
}

// Del removes a key, reporting whether it existed.
func (c *Client) Del(key string) (bool, error) {
	resp, err := c.roundTrip("DEL " + key)
	if err != nil {
		return false, err
	}
	switch resp {
	case "OK":
		return true, nil
	case "NOTFOUND":
		return false, nil
	}
	return false, fmt.Errorf("%w: %s", ErrServer, resp)
}

// Count returns the number of stored keys.
func (c *Client) Count() (int, error) {
	resp, err := c.roundTrip("COUNT")
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(resp, "COUNT %d", &n); err != nil {
		return 0, fmt.Errorf("%w: %s", ErrServer, resp)
	}
	return n, nil
}
