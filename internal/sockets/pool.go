package sockets

import (
	"context"
	"errors"
	"fmt"
	"net"
	"repro/internal/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// PoolConfig parameterizes a Pool.
type PoolConfig struct {
	// Size is the number of pooled connections (default 4). Requests
	// borrow one connection each; excess callers block until one frees.
	Size int
	// MaxAttempts bounds tries per request, dialing included (default 3).
	MaxAttempts int
	// Timeout is the per-attempt deadline covering dial, write, and
	// read (default 2s). A context deadline that expires sooner tightens
	// each attempt further: the effective deadline is
	// min(ctx deadline, now + Timeout).
	Timeout time.Duration
	// BackoffBase is the sleep before the first retry; each further
	// retry doubles it up to BackoffMax, with jitter in [d/2, d]
	// (defaults 2ms and 250ms). The wait is cancelable: a done context
	// aborts it immediately.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes the jitter deterministic for tests (default 1).
	Seed uint64
	// FailConn, when non-nil, reports whether the borrowed connection
	// should be killed before attempt `attempt` of request `req`
	// (both 1-based) — the fault-injection hook mirroring
	// mapreduce.Config.FailTask. Killed attempts fail with a transport
	// error and take the retry path.
	FailConn func(req, attempt int) bool
	// PreAttempt, when non-nil, runs before each wire attempt with the
	// raw request text and the 1-based attempt number — the client-side
	// counterpart of ServerConfig.PreHandle. Chaos harnesses use it to
	// inject latency spikes on the request path (a sleep here delays the
	// attempt but still counts against its deadline budget, so a spike
	// longer than the remaining budget surfaces as a timeout, exactly
	// like real network delay). Keep it bounded: it runs on the request
	// path and is not interrupted by cancellation.
	PreAttempt func(req string, attempt int)
}

// ErrPoolClosed is returned for requests issued after Close.
var ErrPoolClosed = errors.New("sockets: pool closed")

// poolConn is one slot of the pool; conn is nil until dialed (or after
// a transport error discards it).
type poolConn struct {
	conn net.Conn
}

// Pool is a fixed-size pool of KV-server connections with per-request
// deadlines and bounded retry with exponential backoff plus jitter on
// dial and transport errors — the production-shaped client the lab's
// single-connection Client grows into. Safe for concurrent use.
//
// Every operation has a context-first core (GetCtx, SetCtx, ...): the
// context bounds the whole request — borrow wait, dial, write, read,
// and retry backoff — and a canceled or expired context surfaces as an
// error wrapping context.Canceled or context.DeadlineExceeded, distinct
// from ErrPoolClosed and from peer/transport failures. The ctx-less
// methods are context.Background() wrappers kept for call sites that
// have no lifetime to attach.
type Pool struct {
	addr string
	cfg  PoolConfig
	free chan *poolConn

	closed       atomic.Bool
	reqSeen      atomic.Int64
	errSeen      atomic.Int64
	retrySeen    atomic.Int64
	attemptSeen  atomic.Int64
	failInjSeen  atomic.Int64
	canceledSeen atomic.Int64
	reqSeq       atomic.Int64

	rngMu sync.Mutex
	rng   uint64
}

// NewPool connects a pool to a server, dialing one connection eagerly
// (to fail fast on a bad address) and the rest on demand.
func NewPool(addr string, cfg PoolConfig) (*Pool, error) {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := &Pool{addr: addr, cfg: cfg, free: make(chan *poolConn, cfg.Size), rng: cfg.Seed}
	conn, err := dialCtx(context.Background(), addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	p.free <- &poolConn{conn: conn}
	for i := 1; i < cfg.Size; i++ {
		p.free <- &poolConn{}
	}
	return p, nil
}

// Stats returns a snapshot of the request/error/retry counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Requests: p.reqSeen.Load(),
		Errors:   p.errSeen.Load(),
		Retries:  p.retrySeen.Load(),
	}
}

// Counters exports the pool's client-side counters as a
// metrics.CounterSet so benchmark drivers (kvbench, clusterbench) can
// print them next to latency tables: requests issued, wire attempts
// (first tries + retries), retries, failed attempts, FailConn fault
// injections, and requests abandoned because the caller's context was
// canceled or its deadline expired.
func (p *Pool) Counters() *metrics.CounterSet {
	cs := &metrics.CounterSet{}
	cs.Add("pool.requests", float64(p.reqSeen.Load()))
	cs.Add("pool.attempts", float64(p.attemptSeen.Load()))
	cs.Add("pool.retries", float64(p.retrySeen.Load()))
	cs.Add("pool.failed-attempts", float64(p.errSeen.Load()))
	cs.Add("pool.failconn-injections", float64(p.failInjSeen.Load()))
	cs.Add("pool.canceled", float64(p.canceledSeen.Load()))
	return cs
}

// Close releases the pooled connections. In-flight requests finish;
// their connections are closed on return.
func (p *Pool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	for {
		select {
		case pc := <-p.free:
			if pc.conn != nil {
				pc.conn.Close()
			}
		default:
			return nil
		}
	}
}

// do is the ctx-less core kept for the Background wrappers.
func (p *Pool) do(req string) (string, error) {
	return p.doCtx(context.Background(), req)
}

// rt adapts the ctx core to the shared command parsers.
func (p *Pool) rt(ctx context.Context) roundTripper {
	return func(req string) (string, error) { return p.doCtx(ctx, req) }
}

// doCtx runs one request through the borrow/deadline/retry machinery
// under ctx. A context that is already done fails fast — before any
// borrow, dial, or write. Cancellation mid-attempt wakes the blocked
// read; cancellation between attempts skips the remaining backoff and
// retries. The returned error wraps ctx.Err() so callers can
// errors.Is it against context.Canceled / context.DeadlineExceeded.
func (p *Pool) doCtx(ctx context.Context, req string) (string, error) {
	if p.closed.Load() {
		return "", ErrPoolClosed
	}
	if err := ctx.Err(); err != nil {
		p.canceledSeen.Add(1)
		return "", fmt.Errorf("sockets: request aborted before first attempt: %w", err)
	}
	p.reqSeen.Add(1)
	id := int(p.reqSeq.Add(1))
	var lastErr error
	for attempt := 1; attempt <= p.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			p.retrySeen.Add(1)
			if err := p.backoff(ctx, attempt); err != nil {
				p.canceledSeen.Add(1)
				return "", fmt.Errorf("sockets: request canceled in retry backoff after %d attempts: %w", attempt-1, err)
			}
		}
		p.attemptSeen.Add(1)
		var pc *poolConn
		select {
		case pc = <-p.free:
		case <-ctx.Done():
			p.canceledSeen.Add(1)
			return "", fmt.Errorf("sockets: request canceled waiting for a pooled connection: %w", ctx.Err())
		}
		resp, err := p.try(ctx, pc, req, id, attempt)
		if p.closed.Load() {
			if pc.conn != nil {
				pc.conn.Close()
				pc.conn = nil
			}
		}
		p.free <- pc
		if err == nil {
			return resp, nil
		}
		p.errSeen.Add(1)
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			p.canceledSeen.Add(1)
			return "", fmt.Errorf("sockets: request canceled after %d attempts: %w", attempt, cerr)
		}
	}
	return "", fmt.Errorf("sockets: request failed after %d attempts: %w", p.cfg.MaxAttempts, lastErr)
}

// attemptTimeout derives one attempt's deadline budget:
// min(cfg.Timeout, time left until the ctx deadline).
func (p *Pool) attemptTimeout(ctx context.Context) time.Duration {
	d := p.cfg.Timeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < d {
			d = rem
		}
	}
	return d
}

// try performs one attempt on one pooled connection, discarding the
// connection on any transport error so the next attempt redials. A
// cancellation while the attempt is blocked in write/read rewinds the
// connection deadline to wake it immediately.
func (p *Pool) try(ctx context.Context, pc *poolConn, req string, id, attempt int) (string, error) {
	// The injected latency runs before the deadline budget is computed,
	// so under a ctx deadline a spike eats the attempt's remaining time
	// the way real network delay would.
	if p.cfg.PreAttempt != nil {
		p.cfg.PreAttempt(req, attempt)
	}
	timeout := p.attemptTimeout(ctx)
	if timeout <= 0 {
		return "", context.DeadlineExceeded
	}
	// When the ctx deadline (not cfg.Timeout) set this attempt's budget,
	// an I/O timeout IS the ctx deadline expiring — attribute it, since
	// the read can wake a hair before ctx.Err() flips.
	ctxBounded := timeout < p.cfg.Timeout
	wrap := func(err error) error {
		var nerr net.Error
		if ctxBounded && errors.As(err, &nerr) && nerr.Timeout() {
			return fmt.Errorf("sockets: attempt stopped by ctx deadline: %w", context.DeadlineExceeded)
		}
		return err
	}
	if pc.conn == nil {
		conn, err := dialCtx(ctx, p.addr, timeout)
		if err != nil {
			return "", wrap(err)
		}
		pc.conn = conn
	}
	if p.cfg.FailConn != nil && p.cfg.FailConn(id, attempt) {
		p.failInjSeen.Add(1)
		pc.conn.Close() // the injected mid-flight connection kill
	}
	pc.conn.SetDeadline(time.Now().Add(timeout))
	if done := ctx.Done(); done != nil {
		conn := pc.conn
		watch := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-done:
				conn.SetDeadline(aLongTimeAgo) // wake the blocked read
			case <-watch:
			}
		}()
		// Join the watchdog before returning: a stray SetDeadline after
		// the connection goes back to the pool would clobber the next
		// request's deadline.
		defer func() { close(watch); <-exited }()
	}
	if err := WriteFrame(pc.conn, []byte(req)); err != nil {
		pc.conn.Close()
		pc.conn = nil
		return "", wrap(err)
	}
	resp, err := ReadFrame(pc.conn)
	if err != nil {
		pc.conn.Close()
		pc.conn = nil
		return "", wrap(err)
	}
	return string(resp), nil
}

// backoff waits out the exponential, jittered delay before a retry
// (attempt >= 2), returning early with ctx.Err() when the caller gives
// up — a canceled request must not sit out the backoff ladder.
func (p *Pool) backoff(ctx context.Context, attempt int) error {
	d := p.cfg.BackoffBase << (attempt - 2)
	if d > p.cfg.BackoffMax || d <= 0 {
		d = p.cfg.BackoffMax
	}
	p.rngMu.Lock()
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	r := p.rng
	p.rngMu.Unlock()
	half := d / 2
	t := time.NewTimer(half + time.Duration(r%uint64(half+1)))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Ping checks liveness.
func (p *Pool) Ping() error { return doPing(p.do) }

// PingCtx checks liveness under ctx.
func (p *Pool) PingCtx(ctx context.Context) error { return doPing(p.rt(ctx)) }

// Set stores key = value (keys with whitespace rejected via ErrBadKey).
func (p *Pool) Set(key, value string) error { return doSet(p.do, key, value) }

// SetCtx stores key = value under ctx.
func (p *Pool) SetCtx(ctx context.Context, key, value string) error {
	return doSet(p.rt(ctx), key, value)
}

// Get fetches a value; found is false for missing keys.
func (p *Pool) Get(key string) (value string, found bool, err error) { return doGet(p.do, key) }

// GetCtx fetches a value under ctx; found is false for missing keys.
func (p *Pool) GetCtx(ctx context.Context, key string) (value string, found bool, err error) {
	return doGet(p.rt(ctx), key)
}

// Del removes a key, reporting whether it existed.
func (p *Pool) Del(key string) (bool, error) { return doDel(p.do, key) }

// DelCtx removes a key under ctx, reporting whether it existed.
func (p *Pool) DelCtx(ctx context.Context, key string) (bool, error) {
	return doDel(p.rt(ctx), key)
}

// MDel bulk-deletes keys (chunked under the frame limit), returning how
// many existed.
func (p *Pool) MDel(keys ...string) (int, error) { return doMDel(p.do, keys) }

// MDelCtx bulk-deletes keys under ctx; a cancellation between chunks
// returns the deletions applied so far alongside the wrapped ctx error.
func (p *Pool) MDelCtx(ctx context.Context, keys ...string) (int, error) {
	return doMDel(p.rt(ctx), keys)
}

// Count returns the number of stored keys.
func (p *Pool) Count() (int, error) { return doCount(p.do) }

// CountCtx returns the number of stored keys under ctx.
func (p *Pool) CountCtx(ctx context.Context) (int, error) { return doCount(p.rt(ctx)) }

// Keys returns all stored keys in sorted order.
func (p *Pool) Keys() ([]string, error) { return doKeys(p.do) }

// KeysCtx returns all stored keys in sorted order under ctx.
func (p *Pool) KeysCtx(ctx context.Context) ([]string, error) { return doKeys(p.rt(ctx)) }
