package sockets

import (
	"errors"
	"fmt"
	"net"
	"repro/internal/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// PoolConfig parameterizes a Pool.
type PoolConfig struct {
	// Size is the number of pooled connections (default 4). Requests
	// borrow one connection each; excess callers block until one frees.
	Size int
	// MaxAttempts bounds tries per request, dialing included (default 3).
	MaxAttempts int
	// Timeout is the per-attempt deadline covering dial, write, and
	// read (default 2s).
	Timeout time.Duration
	// BackoffBase is the sleep before the first retry; each further
	// retry doubles it up to BackoffMax, with jitter in [d/2, d]
	// (defaults 2ms and 250ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes the jitter deterministic for tests (default 1).
	Seed uint64
	// FailConn, when non-nil, reports whether the borrowed connection
	// should be killed before attempt `attempt` of request `req`
	// (both 1-based) — the fault-injection hook mirroring
	// mapreduce.Config.FailTask. Killed attempts fail with a transport
	// error and take the retry path.
	FailConn func(req, attempt int) bool
}

// ErrPoolClosed is returned for requests issued after Close.
var ErrPoolClosed = errors.New("sockets: pool closed")

// poolConn is one slot of the pool; conn is nil until dialed (or after
// a transport error discards it).
type poolConn struct {
	conn net.Conn
}

// Pool is a fixed-size pool of KV-server connections with per-request
// deadlines and bounded retry with exponential backoff plus jitter on
// dial and transport errors — the production-shaped client the lab's
// single-connection Client grows into. Safe for concurrent use.
type Pool struct {
	addr string
	cfg  PoolConfig
	free chan *poolConn

	closed      atomic.Bool
	reqSeen     atomic.Int64
	errSeen     atomic.Int64
	retrySeen   atomic.Int64
	attemptSeen atomic.Int64
	failInjSeen atomic.Int64
	reqSeq      atomic.Int64

	rngMu sync.Mutex
	rng   uint64
}

// NewPool connects a pool to a server, dialing one connection eagerly
// (to fail fast on a bad address) and the rest on demand.
func NewPool(addr string, cfg PoolConfig) (*Pool, error) {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := &Pool{addr: addr, cfg: cfg, free: make(chan *poolConn, cfg.Size), rng: cfg.Seed}
	conn, err := net.DialTimeout("tcp", addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	p.free <- &poolConn{conn: conn}
	for i := 1; i < cfg.Size; i++ {
		p.free <- &poolConn{}
	}
	return p, nil
}

// Stats returns a snapshot of the request/error/retry counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Requests: p.reqSeen.Load(),
		Errors:   p.errSeen.Load(),
		Retries:  p.retrySeen.Load(),
	}
}

// Counters exports the pool's client-side counters as a
// metrics.CounterSet so benchmark drivers (kvbench, clusterbench) can
// print them next to latency tables: requests issued, wire attempts
// (first tries + retries), retries, failed attempts, and FailConn
// fault injections.
func (p *Pool) Counters() *metrics.CounterSet {
	cs := &metrics.CounterSet{}
	cs.Add("pool.requests", float64(p.reqSeen.Load()))
	cs.Add("pool.attempts", float64(p.attemptSeen.Load()))
	cs.Add("pool.retries", float64(p.retrySeen.Load()))
	cs.Add("pool.failed-attempts", float64(p.errSeen.Load()))
	cs.Add("pool.failconn-injections", float64(p.failInjSeen.Load()))
	return cs
}

// Close releases the pooled connections. In-flight requests finish;
// their connections are closed on return.
func (p *Pool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	for {
		select {
		case pc := <-p.free:
			if pc.conn != nil {
				pc.conn.Close()
			}
		default:
			return nil
		}
	}
}

// do runs one request through the borrow/deadline/retry machinery.
func (p *Pool) do(req string) (string, error) {
	if p.closed.Load() {
		return "", ErrPoolClosed
	}
	p.reqSeen.Add(1)
	id := int(p.reqSeq.Add(1))
	var lastErr error
	for attempt := 1; attempt <= p.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			p.retrySeen.Add(1)
			p.backoff(attempt)
		}
		p.attemptSeen.Add(1)
		pc := <-p.free
		resp, err := p.try(pc, req, id, attempt)
		if p.closed.Load() {
			if pc.conn != nil {
				pc.conn.Close()
				pc.conn = nil
			}
		}
		p.free <- pc
		if err == nil {
			return resp, nil
		}
		p.errSeen.Add(1)
		lastErr = err
	}
	return "", fmt.Errorf("sockets: request failed after %d attempts: %w", p.cfg.MaxAttempts, lastErr)
}

// try performs one attempt on one pooled connection, discarding the
// connection on any transport error so the next attempt redials.
func (p *Pool) try(pc *poolConn, req string, id, attempt int) (string, error) {
	if pc.conn == nil {
		conn, err := net.DialTimeout("tcp", p.addr, p.cfg.Timeout)
		if err != nil {
			return "", err
		}
		pc.conn = conn
	}
	if p.cfg.FailConn != nil && p.cfg.FailConn(id, attempt) {
		p.failInjSeen.Add(1)
		pc.conn.Close() // the injected mid-flight connection kill
	}
	pc.conn.SetDeadline(time.Now().Add(p.cfg.Timeout))
	if err := WriteFrame(pc.conn, []byte(req)); err != nil {
		pc.conn.Close()
		pc.conn = nil
		return "", err
	}
	resp, err := ReadFrame(pc.conn)
	if err != nil {
		pc.conn.Close()
		pc.conn = nil
		return "", err
	}
	return string(resp), nil
}

// backoff sleeps the exponential, jittered delay before a retry
// (attempt >= 2).
func (p *Pool) backoff(attempt int) {
	d := p.cfg.BackoffBase << (attempt - 2)
	if d > p.cfg.BackoffMax || d <= 0 {
		d = p.cfg.BackoffMax
	}
	p.rngMu.Lock()
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	r := p.rng
	p.rngMu.Unlock()
	half := d / 2
	time.Sleep(half + time.Duration(r%uint64(half+1)))
}

// Ping checks liveness.
func (p *Pool) Ping() error { return doPing(p.do) }

// Set stores key = value (keys with whitespace rejected via ErrBadKey).
func (p *Pool) Set(key, value string) error { return doSet(p.do, key, value) }

// Get fetches a value; found is false for missing keys.
func (p *Pool) Get(key string) (value string, found bool, err error) { return doGet(p.do, key) }

// Del removes a key, reporting whether it existed.
func (p *Pool) Del(key string) (bool, error) { return doDel(p.do, key) }

// MDel bulk-deletes keys (chunked under the frame limit), returning how
// many existed.
func (p *Pool) MDel(keys ...string) (int, error) { return doMDel(p.do, keys) }

// Count returns the number of stored keys.
func (p *Pool) Count() (int, error) { return doCount(p.do) }

// Keys returns all stored keys in sorted order.
func (p *Pool) Keys() ([]string, error) { return doKeys(p.do) }
