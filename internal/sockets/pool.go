package sockets

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/sockets/wire"
)

// KV is one key/value pair of an MPut batch.
type KV struct {
	Key, Value string
}

// Proto selects a Pool's wire protocol.
type Proto int

const (
	// ProtoText is the legacy line-oriented protocol: one request in
	// flight per pooled connection, checkout-per-request.
	ProtoText Proto = iota
	// ProtoBinary is the pipelined binary protocol (internal/sockets/
	// wire): one shared connection multiplexes many in-flight requests,
	// matched to responses by correlation ID.
	ProtoBinary
)

func (p Proto) String() string {
	if p == ProtoBinary {
		return "binary"
	}
	return "text"
}

// ParseProto maps the -proto flag values of kvbench and clusterbench.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "text":
		return ProtoText, nil
	case "binary":
		return ProtoBinary, nil
	}
	return ProtoText, fmt.Errorf("sockets: unknown protocol %q (want text or binary)", s)
}

// PoolConfig parameterizes a Pool.
type PoolConfig struct {
	// Proto selects the wire protocol (default ProtoText). With
	// ProtoBinary the pool replaces checkout-per-request with one shared
	// pipelined connection; Size then caps nothing but is kept for
	// config compatibility.
	Proto Proto
	// Size is the number of pooled connections (default 4). Requests
	// borrow one connection each; excess callers block until one frees.
	Size int
	// MaxAttempts bounds tries per request, dialing included (default 3).
	MaxAttempts int
	// Timeout is the per-attempt deadline covering dial, write, and
	// read (default 2s). A context deadline that expires sooner tightens
	// each attempt further: the effective deadline is
	// min(ctx deadline, now + Timeout).
	Timeout time.Duration
	// BackoffBase is the sleep before the first retry; each further
	// retry doubles it up to BackoffMax, with jitter in [d/2, d]
	// (defaults 2ms and 250ms). The wait is cancelable: a done context
	// aborts it immediately.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes the jitter deterministic for tests (default 1).
	Seed uint64
	// FailConn, when non-nil, reports whether the borrowed connection
	// should be killed before attempt `attempt` of request `req`
	// (both 1-based) — the fault-injection hook mirroring
	// mapreduce.Config.FailTask. Killed attempts fail with a transport
	// error and take the retry path.
	FailConn func(req, attempt int) bool
	// PreAttempt, when non-nil, runs before each wire attempt with the
	// raw request text and the 1-based attempt number — the client-side
	// counterpart of ServerConfig.PreHandle. Chaos harnesses use it to
	// inject latency spikes on the request path (a sleep here delays the
	// attempt but still counts against its deadline budget, so a spike
	// longer than the remaining budget surfaces as a timeout, exactly
	// like real network delay). Keep it bounded: it runs on the request
	// path and is not interrupted by cancellation.
	PreAttempt func(req string, attempt int)
}

// ErrPoolClosed is returned for requests issued after Close.
var ErrPoolClosed = errors.New("sockets: pool closed")

// poolConn is one slot of the pool; conn is nil until dialed (or after
// a transport error discards it).
type poolConn struct {
	conn net.Conn
}

// Pool is a fixed-size pool of KV-server connections with per-request
// deadlines and bounded retry with exponential backoff plus jitter on
// dial and transport errors — the production-shaped client the lab's
// single-connection Client grows into. Safe for concurrent use.
//
// Every operation has a context-first core (GetCtx, SetCtx, ...): the
// context bounds the whole request — borrow wait, dial, write, read,
// and retry backoff — and a canceled or expired context surfaces as an
// error wrapping context.Canceled or context.DeadlineExceeded, distinct
// from ErrPoolClosed and from peer/transport failures. The ctx-less
// methods are context.Background() wrappers kept for call sites that
// have no lifetime to attach.
type Pool struct {
	addr string
	cfg  PoolConfig
	free chan *poolConn
	pipe *pipe // the shared pipelined transport; nil on ProtoText

	closed       atomic.Bool
	reqSeen      atomic.Int64
	errSeen      atomic.Int64
	retrySeen    atomic.Int64
	attemptSeen  atomic.Int64
	failInjSeen  atomic.Int64
	canceledSeen atomic.Int64
	overloadSeen atomic.Int64
	reqSeq       atomic.Int64

	rngMu sync.Mutex
	rng   uint64
}

// NewPool connects a pool to a server, dialing one connection eagerly
// (to fail fast on a bad address) and the rest on demand.
func NewPool(addr string, cfg PoolConfig) (*Pool, error) {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultAttemptTimeout
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := &Pool{addr: addr, cfg: cfg, free: make(chan *poolConn, cfg.Size), rng: cfg.Seed}
	if cfg.Proto == ProtoBinary {
		p.pipe = newPipe(p)
		// Establish the shared connection eagerly to fail fast on a bad
		// address, like the text path's eager first dial.
		if _, _, _, err := p.pipe.ensure(context.Background()); err != nil {
			return nil, err
		}
		return p, nil
	}
	conn, err := dialCtx(context.Background(), addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	p.free <- &poolConn{conn: conn}
	for i := 1; i < cfg.Size; i++ {
		p.free <- &poolConn{}
	}
	return p, nil
}

// Stats returns a snapshot of the request/error/retry counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Requests: p.reqSeen.Load(),
		Errors:   p.errSeen.Load(),
		Retries:  p.retrySeen.Load(),
	}
}

// Counters exports the pool's client-side counters as a
// metrics.CounterSet so benchmark drivers (kvbench, clusterbench) can
// print them next to latency tables: requests issued, wire attempts
// (first tries + retries), retries, failed attempts, FailConn fault
// injections, and requests abandoned because the caller's context was
// canceled or its deadline expired.
func (p *Pool) Counters() *metrics.CounterSet {
	cs := &metrics.CounterSet{}
	cs.Add("pool.requests", float64(p.reqSeen.Load()))
	cs.Add("pool.attempts", float64(p.attemptSeen.Load()))
	cs.Add("pool.retries", float64(p.retrySeen.Load()))
	cs.Add("pool.failed-attempts", float64(p.errSeen.Load()))
	cs.Add("pool.failconn-injections", float64(p.failInjSeen.Load()))
	cs.Add("pool.canceled", float64(p.canceledSeen.Load()))
	cs.Add("pool.overloads", float64(p.overloadSeen.Load()))
	return cs
}

// Overloads reports how many attempts the server shed with an overload
// response (each was retried through the backoff ladder like a
// transport error).
func (p *Pool) Overloads() int64 { return p.overloadSeen.Load() }

// Close releases the pooled connections. In-flight requests finish;
// their connections are closed on return.
func (p *Pool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	if p.pipe != nil {
		p.pipe.shutdown()
	}
	for {
		select {
		case pc := <-p.free:
			if pc.conn != nil {
				pc.conn.Close()
			}
		default:
			return nil
		}
	}
}

// rt adapts the ctx core to the shared command parsers.
func (p *Pool) rt(ctx context.Context) roundTripper {
	return func(req string) (string, error) { return p.doCtx(ctx, req) }
}

// doCtx runs one request through the borrow/deadline/retry machinery
// under ctx. A context that is already done fails fast — before any
// borrow, dial, or write. Cancellation mid-attempt wakes the blocked
// read; cancellation between attempts skips the remaining backoff and
// retries. The returned error wraps ctx.Err() so callers can
// errors.Is it against context.Canceled / context.DeadlineExceeded.
func (p *Pool) doCtx(ctx context.Context, req string) (string, error) {
	if p.closed.Load() {
		return "", ErrPoolClosed
	}
	if err := ctx.Err(); err != nil {
		p.canceledSeen.Add(1)
		return "", fmt.Errorf("sockets: request aborted before first attempt: %w", err)
	}
	p.reqSeen.Add(1)
	id := int(p.reqSeq.Add(1))
	var lastErr error
	shed := false
	for attempt := 1; attempt <= p.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			p.retrySeen.Add(1)
			if err := p.backoff(ctx, backoffStep(attempt, shed)); err != nil {
				p.canceledSeen.Add(1)
				return "", fmt.Errorf("sockets: request canceled in retry backoff after %d attempts: %w", attempt-1, err)
			}
		}
		p.attemptSeen.Add(1)
		var pc *poolConn
		select {
		case pc = <-p.free:
		case <-ctx.Done():
			p.canceledSeen.Add(1)
			return "", fmt.Errorf("sockets: request canceled waiting for a pooled connection: %w", ctx.Err())
		}
		resp, err := p.try(ctx, pc, req, id, attempt)
		if p.closed.Load() {
			if pc.conn != nil {
				pc.conn.Close()
				pc.conn = nil
			}
		}
		p.free <- pc
		if err == nil {
			if resp != textOverload {
				return resp, nil
			}
			// The server shed this attempt at admission. The connection is
			// fine (keep it pooled); the node just needs breathing room, so
			// take the jittered backoff ladder — stiffened, because a shed
			// means the node is saturated, not flaky: re-offering the load
			// on the transport-error schedule is exactly the retry storm
			// admission control exists to damp.
			p.errSeen.Add(1)
			p.overloadSeen.Add(1)
			lastErr = ErrOverload
			shed = true
			if cerr := ctx.Err(); cerr != nil {
				p.canceledSeen.Add(1)
				return "", fmt.Errorf("sockets: request canceled after %d attempts: %w", attempt, cerr)
			}
			continue
		}
		p.errSeen.Add(1)
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			p.canceledSeen.Add(1)
			return "", fmt.Errorf("sockets: request canceled after %d attempts: %w", attempt, cerr)
		}
	}
	return "", fmt.Errorf("sockets: request failed after %d attempts: %w", p.cfg.MaxAttempts, lastErr)
}

// defaultAttemptTimeout backs a zero cfg.Timeout. NewPool normalizes
// the config, but attemptTimeout clamps again on its own: a Pool whose
// Timeout reached zero any other way (direct construction in tests,
// a future config path that skips normalization) must never turn a
// missing ctx deadline into an unbounded attempt — that would evade
// the cancellation guarantees the whole stack is built on.
const defaultAttemptTimeout = 2 * time.Second

// attemptTimeout derives one attempt's deadline budget:
// min(cfg.Timeout, time left until the ctx deadline), with cfg.Timeout
// clamped to defaultAttemptTimeout when unset. ctxBounded reports that
// the ctx deadline (not the config) set the budget, so an I/O timeout
// can be attributed to the context.
func (p *Pool) attemptTimeout(ctx context.Context) (d time.Duration, ctxBounded bool) {
	d = p.cfg.Timeout
	if d <= 0 {
		d = defaultAttemptTimeout
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < d {
			d, ctxBounded = rem, true
		}
	}
	return d, ctxBounded
}

// try performs one attempt on one pooled connection, discarding the
// connection on any transport error so the next attempt redials. A
// cancellation while the attempt is blocked in write/read rewinds the
// connection deadline to wake it immediately.
func (p *Pool) try(ctx context.Context, pc *poolConn, req string, id, attempt int) (string, error) {
	// The injected latency runs before the deadline budget is computed,
	// so under a ctx deadline a spike eats the attempt's remaining time
	// the way real network delay would.
	if p.cfg.PreAttempt != nil {
		p.cfg.PreAttempt(req, attempt)
	}
	timeout, ctxBounded := p.attemptTimeout(ctx)
	if timeout <= 0 {
		return "", context.DeadlineExceeded
	}
	// When the ctx deadline (not cfg.Timeout) set this attempt's budget,
	// an I/O timeout IS the ctx deadline expiring — attribute it, since
	// the read can wake a hair before ctx.Err() flips.
	wrap := func(err error) error {
		var nerr net.Error
		if ctxBounded && errors.As(err, &nerr) && nerr.Timeout() {
			return fmt.Errorf("sockets: attempt stopped by ctx deadline: %w", context.DeadlineExceeded)
		}
		return err
	}
	if pc.conn == nil {
		conn, err := dialCtx(ctx, p.addr, timeout)
		if err != nil {
			return "", wrap(err)
		}
		pc.conn = conn
	}
	if p.cfg.FailConn != nil && p.cfg.FailConn(id, attempt) {
		p.failInjSeen.Add(1)
		pc.conn.Close() // the injected mid-flight connection kill
	}
	pc.conn.SetDeadline(time.Now().Add(timeout))
	if done := ctx.Done(); done != nil {
		conn := pc.conn
		watch := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-done:
				conn.SetDeadline(aLongTimeAgo) // wake the blocked read
			case <-watch:
			}
		}()
		// Join the watchdog before returning: a stray SetDeadline after
		// the connection goes back to the pool would clobber the next
		// request's deadline.
		defer func() { close(watch); <-exited }()
	}
	if err := WriteFrame(pc.conn, []byte(req)); err != nil {
		pc.conn.Close()
		pc.conn = nil
		return "", wrap(err)
	}
	resp, err := ReadFrame(pc.conn)
	if err != nil {
		pc.conn.Close()
		pc.conn = nil
		return "", wrap(err)
	}
	return string(resp), nil
}

// backoff waits out the exponential, jittered delay before a retry
// (attempt >= 2), returning early with ctx.Err() when the caller gives
// up — a canceled request must not sit out the backoff ladder.
// backoffStep maps an attempt number to its rung on the backoff
// ladder. A shed previous attempt jumps three rungs (8× the base wait):
// a saturated node needs the aggregate retry pressure to drop, and the
// quorum paths cancel laggard retries anyway once enough replicas
// answer, so the longer wait costs a successful op nothing.
func backoffStep(attempt int, shed bool) int {
	if shed {
		return attempt + 3
	}
	return attempt
}

func (p *Pool) backoff(ctx context.Context, attempt int) error {
	d := p.cfg.BackoffBase << (attempt - 2)
	if d > p.cfg.BackoffMax || d <= 0 {
		d = p.cfg.BackoffMax
	}
	p.rngMu.Lock()
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	r := p.rng
	p.rngMu.Unlock()
	half := d / 2
	t := time.NewTimer(half + time.Duration(r%uint64(half+1)))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// binary reports whether this pool speaks the pipelined binary
// protocol; each public operation branches here, so callers are
// protocol-agnostic.
func (p *Pool) binary() bool { return p.cfg.Proto == ProtoBinary }

// Ping checks liveness.
func (p *Pool) Ping() error { return p.PingCtx(context.Background()) }

// PingCtx checks liveness under ctx.
func (p *Pool) PingCtx(ctx context.Context) error {
	if p.binary() {
		return p.binPing(ctx)
	}
	return doPing(p.rt(ctx))
}

// Set stores key = value (keys with whitespace rejected via ErrBadKey;
// on the text protocol, values containing CR/LF rejected via
// ErrBadValue — the binary protocol carries opaque bytes).
func (p *Pool) Set(key, value string) error { return p.SetCtx(context.Background(), key, value) }

// SetCtx stores key = value under ctx.
func (p *Pool) SetCtx(ctx context.Context, key, value string) error {
	if p.binary() {
		return p.binSet(ctx, key, value)
	}
	return doSet(p.rt(ctx), key, value)
}

// Get fetches a value; found is false for missing keys.
func (p *Pool) Get(key string) (value string, found bool, err error) {
	return p.GetCtx(context.Background(), key)
}

// GetCtx fetches a value under ctx; found is false for missing keys.
func (p *Pool) GetCtx(ctx context.Context, key string) (value string, found bool, err error) {
	if p.binary() {
		return p.binGet(ctx, key)
	}
	return doGet(p.rt(ctx), key)
}

// Del removes a key, reporting whether it existed.
func (p *Pool) Del(key string) (bool, error) { return p.DelCtx(context.Background(), key) }

// DelCtx removes a key under ctx, reporting whether it existed.
func (p *Pool) DelCtx(ctx context.Context, key string) (bool, error) {
	if p.binary() {
		return p.binDel(ctx, key)
	}
	return doDel(p.rt(ctx), key)
}

// MDel bulk-deletes keys (chunked under the frame limit), returning how
// many existed.
func (p *Pool) MDel(keys ...string) (int, error) { return p.MDelCtx(context.Background(), keys...) }

// MDelCtx bulk-deletes keys under ctx; a cancellation between chunks
// returns the deletions applied so far alongside the wrapped ctx error.
func (p *Pool) MDelCtx(ctx context.Context, keys ...string) (int, error) {
	for _, k := range keys {
		if err := validateKey(k); err != nil {
			return 0, err
		}
	}
	if p.binary() {
		return p.binMDel(ctx, keys)
	}
	return doMDel(p.rt(ctx), keys)
}

// MGet fetches many keys at once. See MGetCtx.
func (p *Pool) MGet(keys ...string) ([]string, []bool, error) {
	return p.MGetCtx(context.Background(), keys...)
}

// MGetCtx fetches many keys, returning values and found flags parallel
// to keys. On the binary protocol the whole batch rides one MGET PDU
// per chunk — one syscall amortized over the batch, the fan-in path
// cluster hint replay uses; on the text protocol it degrades to
// sequential GETs (stopping at the first transport error).
func (p *Pool) MGetCtx(ctx context.Context, keys ...string) ([]string, []bool, error) {
	for _, k := range keys {
		if err := validateKey(k); err != nil {
			return nil, nil, err
		}
	}
	if p.binary() {
		return p.binMGet(ctx, keys)
	}
	values := make([]string, len(keys))
	found := make([]bool, len(keys))
	for i, k := range keys {
		v, ok, err := doGet(p.rt(ctx), k)
		if err != nil {
			return nil, nil, err
		}
		values[i], found[i] = v, ok
	}
	return values, found, nil
}

// MPut stores many pairs at once. See MPutCtx.
func (p *Pool) MPut(pairs []KV) error { return p.MPutCtx(context.Background(), pairs) }

// MPutCtx stores many pairs. On the binary protocol the batch rides
// one MPUT PDU per chunk — what cluster migration uses to land a moved
// arc's keys without a round trip per key; on the text protocol it
// degrades to sequential SETs (with the text path's value rules).
func (p *Pool) MPutCtx(ctx context.Context, pairs []KV) error {
	for _, kv := range pairs {
		if err := validateKey(kv.Key); err != nil {
			return err
		}
	}
	if p.binary() {
		wkv := make([]wire.KV, len(pairs))
		for i, kv := range pairs {
			wkv[i] = wire.KV{Key: kv.Key, Value: []byte(kv.Value)}
		}
		return p.binMPut(ctx, wkv)
	}
	for _, kv := range pairs {
		if err := doSet(p.rt(ctx), kv.Key, kv.Value); err != nil {
			return err
		}
	}
	return nil
}

// SetVCtx stores key = value only if value's embedded version stamp
// wins the total order against whatever the node already stores,
// returning the SetV* outcome code. This is the write the anti-entropy
// machinery uses everywhere it copies data between replicas: unlike a
// blind SetCtx, a delayed or retried SETV can never regress a replica
// to an older version.
func (p *Pool) SetVCtx(ctx context.Context, key, value string) (uint64, error) {
	if p.binary() {
		return p.binSetV(ctx, key, value)
	}
	return doSetV(p.rt(ctx), key, value)
}

// TreeCtx fetches the node's Merkle range hash for each span — the
// descent step of an anti-entropy diff walk.
func (p *Pool) TreeCtx(ctx context.Context, spans []wire.Span) ([]uint64, error) {
	if p.binary() {
		return p.binTree(ctx, spans)
	}
	return doTree(p.rt(ctx), spans)
}

// ScanCtx lists the node's (key, entry hash) pairs for the given Merkle
// bucket spans — the leaf step of an anti-entropy diff walk. Values are
// not transferred; the caller compares hashes and fetches only the keys
// that differ.
func (p *Pool) ScanCtx(ctx context.Context, spans []wire.Span) ([]wire.ScanEntry, error) {
	if p.binary() {
		return p.binScan(ctx, spans)
	}
	return doScan(p.rt(ctx), spans)
}

// Count returns the number of stored keys.
func (p *Pool) Count() (int, error) { return p.CountCtx(context.Background()) }

// CountCtx returns the number of stored keys under ctx.
func (p *Pool) CountCtx(ctx context.Context) (int, error) {
	if p.binary() {
		return p.binCount(ctx)
	}
	return doCount(p.rt(ctx))
}

// Keys returns all stored keys in sorted order.
func (p *Pool) Keys() ([]string, error) { return p.KeysCtx(context.Background()) }

// KeysCtx returns all stored keys in sorted order under ctx.
func (p *Pool) KeysCtx(ctx context.Context) ([]string, error) {
	if p.binary() {
		return p.binKeys(ctx)
	}
	return doKeys(p.rt(ctx))
}
