// White-box test for graceful-close drain on the binary fast path: it
// needs shardFor to hold a store stripe locked mid-request, which the
// public surface deliberately doesn't expose.
package sockets

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/sockets/wire"
)

// TestBinaryInlineDrainOnGracefulClose: a request on the inline fast
// path (no PreHandle hook) must count as in flight — otherwise a
// graceful Close sees the connection as idle, cuts it under a mutation
// being handled, and the queued response is dropped without the drain
// grace the text and goroutine paths get. The test wedges a SET on its
// shard's write lock, Closes the server mid-handling, then releases the
// lock and requires the response to still arrive.
func TestBinaryInlineDrainOnGracefulClose(t *testing.T) {
	s, err := NewServerConfig("127.0.0.1:0", ServerConfig{DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.DialTimeout("tcp", s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hs := make([]byte, 9)
	hs[0] = wire.Magic
	binary.BigEndian.PutUint64(hs[1:], 0xD1A1)
	if _, err := conn.Write(hs); err != nil {
		t.Fatal(err)
	}

	// Hold the shard's write lock so the inline SET blocks mid-handling.
	lock := s.shardFor("k").lock
	lock.Lock()
	req := &wire.Request{Verb: wire.VerbSet, ID: 1, Key: "k", Value: []byte("v")}
	if err := WriteFrame(conn, wire.AppendRequest(nil, req)); err != nil {
		t.Fatal(err)
	}
	for start := time.Now(); s.Stats().Requests == 0; time.Sleep(time.Millisecond) {
		if time.Since(start) > 2*time.Second {
			lock.Unlock()
			t.Fatal("server never read the SET frame")
		}
	}
	time.Sleep(50 * time.Millisecond) // let the handler reach the shard lock

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	time.Sleep(50 * time.Millisecond) // let Close classify the connection
	lock.Unlock()

	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("response dropped by graceful Close: %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil || resp.Tag != wire.RespOK || resp.ID != 1 {
		t.Fatalf("bad drained response: %+v (err %v), want RespOK id 1", resp, err)
	}
	select {
	case <-closed:
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not return after the in-flight request drained")
	}
	// The drained mutation landed in the store.
	sh := s.shardFor("k")
	sh.lock.RLock()
	v, ok := sh.store["k"]
	sh.lock.RUnlock()
	if !ok || v != "v" {
		t.Fatalf("store after drain = %q/%v, want \"v\"/true", v, ok)
	}
}
