package sockets

import (
	"context"
	"fmt"
	"time"

	"repro/internal/sockets/wire"
	"repro/internal/version"
	"repro/internal/wal"
)

// syncWALChunkBytes bounds one SYNCWAL dump chunk's payload. The chunk
// rides inside a RespSyncWAL frame with a few bytes of header (tag, ID,
// next cursor, done flag, length prefixes), so the budget sits safely
// under MaxFrame.
const syncWALChunkBytes = MaxFrame - 4096

// applySyncWAL serves the SYNCWAL verb — the WAL-streaming
// re-replication transport. Dump mode walks this node's log (snapshot,
// sealed segments, and the active segment's fsynced prefix) as raw
// CRC-framed chunks; apply mode folds such a chunk into this node's
// store through the version-conditional SETV path, so streaming is
// idempotent and can never regress a key the receiver already saw a
// newer write for. Neither mode touches the dedupe table's begin path:
// dumps are reads, and applies are naturally idempotent, like SETV.
func (s *Server) applySyncWAL(r *wire.Request) *wire.Response {
	switch r.Mode {
	case wire.SyncWALDump:
		return s.syncWALDump(r)
	case wire.SyncWALApply:
		return s.syncWALApply(r)
	}
	return &wire.Response{Tag: wire.RespErr, ID: r.ID, Err: fmt.Sprintf("syncwal: unknown mode %d", r.Mode)}
}

// syncWALDump returns the next chunk of this node's log stream from the
// caller's cursor. Frames too large for one chunk are skipped (counted
// server-side); the Merkle repair pass that follows a stream picks those
// keys up. A cursor into a segment that compaction has since pruned
// fails loudly — the caller restarts the dump from cursor 0.
func (s *Server) syncWALDump(r *wire.Request) *wire.Response {
	if s.wal == nil {
		return &wire.Response{Tag: wire.RespErr, ID: r.ID, Err: "syncwal: node is not durable (no WAL to stream)"}
	}
	blob, next, done, skipped, err := s.wal.DumpChunk(r.Cursor, syncWALChunkBytes)
	if err != nil {
		return &wire.Response{Tag: wire.RespErr, ID: r.ID, Err: "syncwal: " + err.Error()}
	}
	if skipped > 0 {
		s.syncSkipped.Add(int64(skipped))
	}
	return &wire.Response{Tag: wire.RespSyncWAL, ID: r.ID, N: next, Done: done, Value: blob}
}

// syncWALApply folds one stream chunk into this node's store. Only
// version-stamped set payloads are applied — through the same
// version-conditional compare SETV uses, under the shard locks, with the
// winners logged to this node's own WAL — so a stale stream record can
// never clobber a newer local write, and re-applying a chunk (a retry
// after a lost response) changes nothing. Dedupe recordings ride along
// via preload. Everything else in the stream (deletes, hint bookkeeping,
// unstamped values) is skipped: the anti-entropy Merkle pass owns those.
// All durability tickets are reserved first and waited at the end, so a
// chunk's records share group-commit fsyncs instead of syncing one by
// one.
func (s *Server) syncWALApply(r *wire.Request) *wire.Response {
	items, err := wal.DecodeStream(r.Value)
	if err != nil {
		return &wire.Response{Tag: wire.RespErr, ID: r.ID, Err: "syncwal: " + err.Error()}
	}
	applied := uint64(0)
	var ticks []*wal.Ticket
	put := func(key, value string) {
		if validateKey(key) != nil {
			return
		}
		if _, _, _, err := version.Decode(value); err != nil {
			return // unstamped: not replica data, the Merkle pass decides
		}
		resp, tick := s.applyMutation(0, &wire.Request{Verb: wire.VerbSetV, Key: key, Value: []byte(value)}, nil)
		if tick != nil {
			ticks = append(ticks, tick)
		}
		if resp.Tag == wire.RespCount && SetVAppliedCode(resp.N) {
			applied++
		}
	}
	for _, it := range items {
		switch {
		case it.Dedupe != nil:
			s.dedupe.preload(dedupeKey{client: it.Dedupe.Client, id: it.Dedupe.ID}, it.Dedupe.Resp)
		case it.Rec != nil:
			switch it.Rec.Kind {
			case wal.KindSet:
				put(it.Rec.Key, it.Rec.Value)
			case wal.KindMPut:
				for _, kv := range it.Rec.Pairs {
					put(kv.Key, kv.Value)
				}
			}
		}
	}
	for _, t := range ticks {
		if err := s.walWait(t); err != nil {
			return &wire.Response{Tag: wire.RespErr, ID: r.ID, Err: "durability: " + err.Error()}
		}
	}
	return &wire.Response{Tag: wire.RespCount, ID: r.ID, N: applied}
}

// SyncWALSkipped reports how many oversized log frames dump chunks have
// skipped (each left to the Merkle repair pass).
func (s *Server) SyncWALSkipped() int64 { return s.syncSkipped.Load() }

// WALScrubStats reports the background scrubber's lifetime counters:
// sealed segments verified clean, and corruption findings.
func (s *Server) WALScrubStats() (segments, errors int64) {
	if s.wal == nil {
		return 0, 0
	}
	return s.wal.ScrubbedSegments(), s.wal.ScrubErrors()
}

// startScrub launches the background segment scrubber: every interval
// it re-reads the sealed segments and the snapshot footer and re-checks
// their CRCs, so silent at-rest corruption surfaces while the replicas
// that can repair it are still healthy — instead of at the next crash
// recovery, when the corrupt segment is the only copy. Runs at most one
// pass at a time and stops with the server.
func (s *Server) startScrub(interval time.Duration, onCorrupt func(error)) {
	s.scrubStop = make(chan struct{})
	s.walWG.Add(1)
	go func() {
		defer s.walWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.scrubStop:
				return
			case <-t.C:
			}
			if _, err := s.wal.Scrub(); err != nil {
				// Latch the alarm: one corruption event per incarnation is
				// enough to page on, and the counters keep counting.
				if onCorrupt != nil && s.scrubAlarm.CompareAndSwap(false, true) {
					onCorrupt(err)
				}
			}
		}
	}()
}

// stopScrub halts the scrubber (idempotent; safe when never started).
// Both Close and Crash run it before tearing down the WAL, so a pass
// never races the log's shutdown.
func (s *Server) stopScrub() {
	if s.scrubStop != nil {
		s.scrubOnce.Do(func() { close(s.scrubStop) })
	}
}

// --- client side ---

// errSyncWALText marks the text protocol's lack of a SYNCWAL encoding.
var errSyncWALText = fmt.Errorf("%w: SYNCWAL requires the binary protocol", ErrServer)

// SyncWALDumpCtx pulls one chunk of the server's WAL stream from
// cursor. The returned chunk is an opaque CRC-framed blob (feed it to
// SyncWALApplyCtx on another node); next is the cursor for the following
// chunk, valid until done reports the stream's end. Safe to retry: a
// dump mutates nothing.
func (p *Pool) SyncWALDumpCtx(ctx context.Context, cursor uint64) (chunk []byte, next uint64, done bool, err error) {
	if !p.binary() {
		return nil, 0, false, errSyncWALText
	}
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbSyncWAL, Mode: wire.SyncWALDump, Cursor: cursor})
	if err != nil {
		return nil, 0, false, err
	}
	if resp.Tag != wire.RespSyncWAL {
		return nil, 0, false, binErr(resp)
	}
	return resp.Value, resp.N, resp.Done, nil
}

// SyncWALApplyCtx ships one dumped chunk to the server, which folds the
// version-stamped records into its store (and its own WAL). Returns how
// many records actually applied — retries and stale records fold to
// zero, so the call is idempotent like SETV.
func (p *Pool) SyncWALApplyCtx(ctx context.Context, chunk []byte) (int, error) {
	if !p.binary() {
		return 0, errSyncWALText
	}
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbSyncWAL, Mode: wire.SyncWALApply, Value: chunk})
	if err != nil {
		return 0, err
	}
	if resp.Tag != wire.RespCount {
		return 0, binErr(resp)
	}
	return int(resp.N), nil
}
