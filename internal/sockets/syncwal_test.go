package sockets

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/merkle"
	"repro/internal/sockets/wire"
	"repro/internal/version"
	"repro/internal/wal"
)

// syncWALServer starts a durable binary-protocol server plus its pool.
func syncWALServer(t *testing.T, dir string, cfg ServerConfig) (*Server, *Pool) {
	t.Helper()
	cfg.WALDir = dir
	s, err := NewServerConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(s.Addr(), PoolConfig{Proto: ProtoBinary})
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return s, p
}

// streamWAL pumps the full dump from src into dst, restarting once on a
// stale cursor (compaction racing the dump), and returns how many
// records applied.
func streamWAL(t *testing.T, src, dst *Pool) int {
	t.Helper()
	ctx := context.Background()
	applied, cur, restarts := 0, uint64(0), 0
	for {
		chunk, next, done, err := src.SyncWALDumpCtx(ctx, cur)
		if err != nil {
			if strings.Contains(err.Error(), "stale dump cursor") && restarts == 0 {
				restarts, cur = 1, 0
				continue
			}
			t.Fatalf("SyncWALDumpCtx(%d): %v", cur, err)
		}
		if len(chunk) > 0 {
			n, err := dst.SyncWALApplyCtx(ctx, chunk)
			if err != nil {
				t.Fatalf("SyncWALApplyCtx: %v", err)
			}
			applied += n
		}
		if done {
			return applied
		}
		cur = next
	}
}

// TestSyncWAL_DumpApply_ByteIdenticalReplica is the streaming
// re-replication property: a random version-stamped store — overwrites,
// tombstones, snapshot-covered history, sealed segments, and an active
// tail — streamed onto an empty node yields a byte-identical replica,
// confirmed key-by-key and by the anti-entropy Merkle digest. The
// replica must also hold the data durably: a crash and recovery of the
// receiver reproduces the same store from its own log.
func TestSyncWAL_DumpApply_ByteIdenticalReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	src, srcPool := syncWALServer(t, t.TempDir(), ServerConfig{WALSegmentBytes: 4096})
	defer src.Close()

	want := map[string]string{}
	clock := int64(1)
	stamp := func(key string) version.Version {
		var v version.Version
		if cur, ok := want[key]; ok {
			v, _, _, _ = version.Decode(cur)
		}
		clock++
		return v.Next("n0", clock)
	}
	write := func(n int) {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key%03d", rng.Intn(120))
			var enc string
			if rng.Intn(8) == 0 {
				enc = version.EncodeTombstone(stamp(key))
			} else {
				enc = version.Encode(stamp(key), fmt.Sprintf("v%d-%d", i, rng.Int63()))
			}
			code, err := srcPool.SetVCtx(ctx, key, enc)
			if err != nil {
				t.Fatal(err)
			}
			if !SetVAppliedCode(code) {
				t.Fatalf("SetV of a strictly newer stamp rejected with code %d", code)
			}
			want[key] = enc
		}
	}
	write(300)
	// Compact mid-history so the stream exercises the snapshot phase,
	// then keep writing so sealed segments and an active tail follow it.
	src.maybeSnapshot()
	src.walWG.Wait()
	write(200)

	dstDir := t.TempDir()
	dst, dstPool := syncWALServer(t, dstDir, ServerConfig{})
	applied := streamWAL(t, srcPool, dstPool)
	if applied < len(want) {
		t.Fatalf("stream applied %d records, want at least the %d live keys", applied, len(want))
	}

	check := func(p *Pool, who string) {
		t.Helper()
		n, err := p.CountCtx(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("%s holds %d keys, want %d", who, n, len(want))
		}
		keys := make([]string, 0, len(want))
		for k := range want {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		vals, found, err := p.MGetCtx(ctx, keys...)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			if !found[i] || vals[i] != want[k] {
				t.Fatalf("%s: key %q = %q (found=%v), want %q", who, k, vals[i], found[i], want[k])
			}
		}
		// The Merkle digest is the cluster's divergence detector; root
		// equality is the "these replicas are byte-identical" verdict.
		span := []wire.Span{{Lo: 0, Hi: merkle.Buckets}}
		sh, err := srcPool.TreeCtx(ctx, span)
		if err != nil {
			t.Fatal(err)
		}
		dh, err := p.TreeCtx(ctx, span)
		if err != nil {
			t.Fatal(err)
		}
		if sh[0] != dh[0] {
			t.Fatalf("%s Merkle root %016x diverges from source %016x", who, dh[0], sh[0])
		}
	}
	check(dstPool, "streamed replica")

	// Crash the replica: everything it accepted rode its own WAL, so
	// recovery must rebuild the identical store.
	if err := dst.Crash(); err != nil {
		t.Fatal(err)
	}
	re, err := NewServerConfig("127.0.0.1:0", ServerConfig{WALDir: dstDir})
	if err != nil {
		t.Fatalf("recovering the streamed replica: %v", err)
	}
	defer re.Close()
	rePool, err := NewPool(re.Addr(), PoolConfig{Proto: ProtoBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer rePool.Close()
	check(rePool, "recovered replica")

	// Idempotence: a second full stream (a retry of every chunk) applies
	// nothing and changes nothing.
	if n := streamWAL(t, srcPool, rePool); n != 0 {
		t.Fatalf("re-streaming an identical replica applied %d records, want 0", n)
	}
	check(rePool, "re-streamed replica")
}

// TestSyncWAL_ApplyIsVersionSafe: the receiver folds stream records
// through the version compare, so a stream from a stale source can
// never regress keys the receiver already holds newer writes for — and
// unstamped payloads (not replica data) are skipped outright. Dedupe
// recordings in the source's snapshot ride along via preload.
func TestSyncWAL_ApplyIsVersionSafe(t *testing.T) {
	ctx := context.Background()
	src, srcPool := syncWALServer(t, t.TempDir(), ServerConfig{})
	defer src.Close()
	dst, dstPool := syncWALServer(t, t.TempDir(), ServerConfig{})
	defer dst.Close()

	old := version.Encode(version.Version{}.Next("n0", 10), "old")
	newer := version.Encode(version.Version{}.Next("n1", 99), "newer")
	if _, err := srcPool.SetVCtx(ctx, "contested", old); err != nil {
		t.Fatal(err)
	}
	// A plain SET's payload carries no stamp: the stream must not let it
	// onto the receiver (blind bytes could clobber anything there).
	if err := srcPool.SetCtx(ctx, "unstamped", "raw"); err != nil {
		t.Fatal(err)
	}
	// Snapshot so the dedupe recording of the SET rides the stream.
	src.maybeSnapshot()
	src.walWG.Wait()
	if _, err := dstPool.SetVCtx(ctx, "contested", newer); err != nil {
		t.Fatal(err)
	}

	streamWAL(t, srcPool, dstPool)

	v, found, err := dstPool.GetCtx(ctx, "contested")
	if err != nil {
		t.Fatal(err)
	}
	if !found || v != newer {
		t.Fatalf("stale stream regressed the receiver: %q (found=%v), want %q", v, found, newer)
	}
	if _, found, _ := dstPool.GetCtx(ctx, "unstamped"); found {
		t.Fatal("unstamped payload crossed the stream")
	}
	// The dedupe recording transferred: a retry of the source client's
	// (client, id) pair on the receiver is a duplicate there.
	k := dedupeKey{client: srcPool.pipe.clientID, id: 2} // SET was the source pool's 2nd request
	if e, dup := dst.dedupe.begin(k); !dup {
		t.Fatal("source dedupe recording did not transfer")
	} else if e.resp == nil {
		t.Fatal("transferred dedupe entry has no recorded response")
	}
}

// TestSyncWAL_Refusals: dump needs a WAL to stream, and the verb has no
// text-protocol encoding.
func TestSyncWAL_Refusals(t *testing.T) {
	ctx := context.Background()
	s, err := NewServer("127.0.0.1:0") // memory-only
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := NewPool(s.Addr(), PoolConfig{Proto: ProtoBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, _, _, err := p.SyncWALDumpCtx(ctx, 0); err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("dump from a memory-only node: %v, want a not-durable refusal", err)
	}
	// Apply still works on a memory-only node (the store accepts, nothing
	// is logged) — the cluster only streams between durable nodes, but
	// the verb itself has no reason to refuse.
	chunk := walStreamRecord("k", version.Encode(version.Version{}.Next("n0", 1), "v"))
	if n, err := p.SyncWALApplyCtx(ctx, chunk); err != nil || n != 1 {
		t.Fatalf("apply on memory-only node: n=%d err=%v", n, err)
	}

	tp, err := NewPool(s.Addr(), PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	if _, _, _, err := tp.SyncWALDumpCtx(ctx, 0); !errors.Is(err, ErrServer) {
		t.Fatalf("text pool dump: %v, want binary-protocol refusal", err)
	}
	if _, err := tp.SyncWALApplyCtx(ctx, chunk); !errors.Is(err, ErrServer) {
		t.Fatalf("text pool apply: %v, want binary-protocol refusal", err)
	}
}

// walStreamRecord builds a one-record stream chunk without a source log.
func walStreamRecord(key, value string) []byte {
	return wal.AppendStreamRecord(nil, &wal.Record{Kind: wal.KindSet, Key: key, Value: value})
}

// TestSyncWAL_ApplyRejectsCorruptChunk: a mangled chunk must be refused
// whole — no partial fold of frames before the damage.
func TestSyncWAL_ApplyRejectsCorruptChunk(t *testing.T) {
	ctx := context.Background()
	s, p := syncWALServer(t, t.TempDir(), ServerConfig{})
	defer s.Close()
	chunk := walStreamRecord("k1", version.Encode(version.Version{}.Next("n0", 1), "v1"))
	chunk = append(chunk, walStreamRecord("k2", version.Encode(version.Version{}.Next("n0", 2), "v2"))...)
	chunk[len(chunk)-1] ^= 0x20
	if _, err := p.SyncWALApplyCtx(ctx, chunk); err == nil {
		t.Fatal("corrupt chunk applied cleanly")
	}
	if n, err := p.CountCtx(ctx); err != nil || n != 0 {
		t.Fatalf("store after corrupt chunk: %d keys (err=%v), want 0", n, err)
	}
}

// TestServerScrub_SurfacesCorruption: a durable server with scrubbing
// enabled finds a byte flipped in a sealed segment while still serving,
// reports it through the one-shot corruption callback and the counters
// — and a restart from the damaged directory refuses to come up, so the
// corruption can never silently feed recovery.
func TestServerScrub_SurfacesCorruption(t *testing.T) {
	dir := t.TempDir()
	alarm := make(chan error, 1)
	s, p := syncWALServer(t, dir, ServerConfig{
		WALSegmentBytes:  2048,
		WALScrubInterval: 5 * time.Millisecond,
		WALScrubCorrupt:  func(err error) { alarm <- err },
	})
	defer s.Close()
	ctx := context.Background()
	val := strings.Repeat("x", 100)
	for i := 0; i < 60; i++ { // ~6 KiB of records: several sealed segments
		if err := p.SetCtx(ctx, fmt.Sprintf("k%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	// Let a clean pass land first: the flip below must be a detection,
	// not a race with the initial scan.
	deadline := time.Now().Add(5 * time.Second)
	for clean, _ := s.WALScrubStats(); clean == 0; clean, _ = s.WALScrubStats() {
		if time.Now().After(deadline) {
			t.Fatal("no scrub pass completed")
		}
		time.Sleep(time.Millisecond)
	}

	path := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-alarm:
		if !strings.Contains(err.Error(), path) {
			t.Fatalf("corruption alarm %q does not name %s", err, path)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scrub never reported the flipped byte")
	}
	if _, errs := s.WALScrubStats(); errs == 0 {
		t.Fatal("scrub error counter still zero after the alarm")
	}
	// The node keeps serving from memory — scrub findings degrade
	// durability, not availability.
	if _, found, err := p.GetCtx(ctx, "k00"); err != nil || !found {
		t.Fatalf("server stopped serving after a scrub finding: found=%v err=%v", found, err)
	}
	// But the damaged directory must not feed a recovery.
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	if re, err := NewServerConfig("127.0.0.1:0", ServerConfig{WALDir: dir}); err == nil {
		re.Close()
		t.Fatal("restart from a corrupt WAL directory succeeded")
	}
}
