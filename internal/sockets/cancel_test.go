package sockets

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestPoolGetCtxExpiredDeadlineFailsFast: a context whose deadline has
// already passed must be rejected before any borrow or dial — the
// request never reaches the wire.
func TestPoolGetCtxExpiredDeadlineFailsFast(t *testing.T) {
	s := startServer(t)
	p, err := NewPool(s.Addr(), PoolConfig{Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	before, _ := p.Counters().Get("pool.attempts")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, _, err = p.GetCtx(ctx, "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("GetCtx with expired deadline = %v, want wrapped DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("expired-deadline GetCtx took %v, want immediate", elapsed)
	}
	after, _ := p.Counters().Get("pool.attempts")
	if after != before {
		t.Errorf("expired-deadline request still made %v wire attempts", after-before)
	}
	if canceled, _ := p.Counters().Get("pool.canceled"); canceled != 1 {
		t.Errorf("pool.canceled = %v, want 1", canceled)
	}
}

// TestPoolBackoffCancelPrompt: a cancellation that lands while the
// request sits in retry backoff must abort the wait immediately instead
// of sleeping out the ladder.
func TestPoolBackoffCancelPrompt(t *testing.T) {
	s := startServer(t)
	p, err := NewPool(s.Addr(), PoolConfig{
		Size:        1,
		MaxAttempts: 3,
		// A backoff far longer than the test's cancel point: if the
		// wait is not cancelable, the request takes >2s.
		BackoffBase: 2 * time.Second,
		BackoffMax:  4 * time.Second,
		FailConn:    func(req, attempt int) bool { return true }, // every attempt dies
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() { _, _, err := p.GetCtx(ctx, "k"); errc <- err }()
	time.Sleep(50 * time.Millisecond) // let attempt 1 fail and the backoff start
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("GetCtx = %v, want wrapped context.Canceled", err)
		}
		if !strings.Contains(err.Error(), "backoff") {
			t.Errorf("error %q does not name the backoff wait", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Errorf("cancel during backoff returned after %v, want prompt", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("GetCtx still blocked 2s after cancel: backoff is not cancelable")
	}
}

// TestClientGetCtxCancelWakesBlockedRead: a single-connection Client
// blocked reading a reply from a slow server must be woken by
// cancellation, not held until the server answers.
func TestClientGetCtxCancelWakesBlockedRead(t *testing.T) {
	s, err := NewServerConfig("127.0.0.1:0", ServerConfig{
		PreHandle: func(req string) {
			if strings.HasPrefix(req, "GET") {
				time.Sleep(time.Second)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() { _, _, err := c.GetCtx(ctx, "k"); errc <- err }()
	time.Sleep(50 * time.Millisecond) // let the read block on the slow handler
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("GetCtx = %v, want wrapped context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Errorf("cancel returned after %v, want well under the 1s handler stall", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("GetCtx still blocked 2s after cancel: read is not interruptible")
	}
}

// TestPoolCtxDeadlineTightensAttempt: a ctx deadline shorter than the
// configured per-attempt Timeout must bound the attempt, so a stalled
// server costs the caller only its own budget.
func TestPoolCtxDeadlineTightensAttempt(t *testing.T) {
	s, err := NewServerConfig("127.0.0.1:0", ServerConfig{
		PreHandle: func(req string) {
			if strings.HasPrefix(req, "GET") {
				time.Sleep(time.Second)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := NewPool(s.Addr(), PoolConfig{Size: 1, MaxAttempts: 1, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = p.GetCtx(ctx, "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("GetCtx = %v, want wrapped DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("GetCtx honored the 5s pool timeout (%v) instead of the 100ms ctx deadline", elapsed)
	}
}
