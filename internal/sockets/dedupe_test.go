// White-box tests for the retry-dedupe machinery: handshake client-ID
// collision resistance, age-based eviction, and the early-eviction
// counter that makes capacity-forced exactly-once degradation visible.
package sockets

import (
	"testing"
	"time"
)

// TestClientIDCollisionResistance: handshake client IDs must not be
// sequential — the server keys retry dedupe on (client ID, correlation
// ID) and correlation IDs restart at 1 in every pipe, so client IDs
// drawn from a per-process counter collide across processes (and across
// a restart of the same process), making the server replay another
// client's response instead of applying a fresh mutation.
func TestClientIDCollisionResistance(t *testing.T) {
	const n = 256
	seen := make(map[uint64]bool, n)
	var anyHigh bool
	for i := 0; i < n; i++ {
		id := newClientID()
		if id == 0 {
			t.Fatal("newClientID returned 0")
		}
		if seen[id] {
			t.Fatalf("newClientID repeated %#x within one process", id)
		}
		seen[id] = true
		if id > 1<<40 {
			anyHigh = true
		}
	}
	// A sequential counter yields 1..n; 256 crypto/rand draws all landing
	// under 2^40 has probability ~2^-6144. This is the signature check
	// that the IDs come from entropy, not a counter.
	if !anyHigh {
		t.Fatal("all client IDs are small sequential-looking values; want random 64-bit IDs")
	}
}

// sameStripeKeys returns distinct dedupe keys that hash to one stripe.
func sameStripeKeys(t *dedupeTable, client uint64, n int) []dedupeKey {
	keys := []dedupeKey{{client: client, id: 1}}
	want := t.stripe(keys[0])
	for id := uint64(2); len(keys) < n; id++ {
		k := dedupeKey{client: client, id: id}
		if t.stripe(k) == want {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestDedupeAgeEviction: a completed entry older than the retry horizon
// is dropped for free — no retry can still arrive for it — and its
// eviction does not count as an early (guarantee-degrading) one.
func TestDedupeAgeEviction(t *testing.T) {
	const horizon = 40 * time.Millisecond
	tab := newDedupeTable(1<<16, horizon)
	ks := sameStripeKeys(tab, 7, 2)

	e, dup := tab.begin(ks[0])
	if dup {
		t.Fatal("fresh key reported duplicate")
	}
	tab.finish(ks[0], e, []byte{0x81})
	if _, dup = tab.begin(ks[0]); !dup {
		t.Fatal("entry not replayable immediately after finish")
	}

	time.Sleep(horizon + 20*time.Millisecond)
	// The next finish on the stripe sweeps the aged entry out.
	e2, dup := tab.begin(ks[1])
	if dup {
		t.Fatal("second key reported duplicate")
	}
	tab.finish(ks[1], e2, []byte{0x81})

	if _, dup = tab.begin(ks[0]); dup {
		t.Error("entry older than the horizon survived the sweep")
	}
	if got := tab.earlyEvict.Load(); got != 0 {
		t.Errorf("age eviction counted as early: earlyEvict = %d, want 0", got)
	}
}

// TestDedupeEarlyEvictionCounted: when the capacity backstop forces out
// an entry still inside the retry horizon, the exactly-once guarantee
// degrades for that op — the eviction must be counted, not silent.
func TestDedupeEarlyEvictionCounted(t *testing.T) {
	// dedupeStripes total capacity = 1 completed entry per stripe.
	tab := newDedupeTable(dedupeStripes, time.Hour)
	ks := sameStripeKeys(tab, 9, 2)

	for _, k := range ks {
		e, dup := tab.begin(k)
		if dup {
			t.Fatalf("fresh key %v reported duplicate", k)
		}
		tab.finish(k, e, []byte{0x81})
	}
	// Capacity 1: finishing ks[1] evicted ks[0] well inside the horizon.
	if _, dup := tab.begin(ks[0]); dup {
		t.Error("over-capacity entry not evicted")
	}
	if _, dup := tab.begin(ks[1]); !dup {
		t.Error("newest entry evicted instead of oldest")
	}
	if got := tab.earlyEvict.Load(); got != 1 {
		t.Errorf("earlyEvict = %d, want 1", got)
	}
}
