package sockets

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sockets/wire"
)

// pipeClientSeq only disambiguates the entropy-failure fallback in
// newClientID; the normal path never touches it.
var pipeClientSeq atomic.Uint64

// newClientID draws the 8-byte binary-handshake client ID from
// crypto/rand. The server keys its retry-dedupe table on (client ID,
// correlation ID), and correlation IDs restart at 1 in every pipe — a
// sequential client ID would repeat the same (1, 1) pair in every
// process (and in every restart of the same process), so the server
// would mistake a fresh mutation for a retry of some other client's op
// and replay the recorded response without applying the write. 64
// random bits make that collision vanishingly unlikely across any
// number of client processes. The fallback only runs if the system
// entropy source is broken: it mixes wall time with a process-local
// counter, which still never repeats within a process and is
// time-separated across them.
func newClientID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return uint64(time.Now().UnixNano()) ^ pipeClientSeq.Add(1)<<56
}

// pipeResult is one settled response future.
type pipeResult struct {
	resp *wire.Response
	err  error
}

// pipeFuture is a registered in-flight request: gen ties it to the
// connection incarnation it was written on, so a dying connection fails
// exactly the futures that were riding it.
type pipeFuture struct {
	gen uint64
	ch  chan pipeResult
}

// pipe is the pipelining round-tripper behind a binary-protocol Pool:
// one shared connection, a writer side serialized by writeMu, and a
// reader goroutine that settles response futures by correlation ID —
// so responses return in whatever order the server finishes them and
// one connection carries any number of in-flight operations. It
// replaces the text path's checkout-per-request entirely.
type pipe struct {
	p        *Pool
	clientID uint64

	mu       sync.Mutex // guards conn, fw, gen, pending
	conn     net.Conn
	fw       *frameWriter // coalesced request writes on conn
	gen      uint64
	pending  map[uint64]*pipeFuture
	lastRecv atomic.Int64 // UnixNano of the last frame read; dead-conn heuristic
}

func newPipe(p *Pool) *pipe {
	return &pipe{
		p:        p,
		clientID: newClientID(),
		pending:  make(map[uint64]*pipeFuture),
	}
}

// ensure returns the live connection (and its generation), dialing and
// handshaking a fresh one if the previous died. The dial respects both
// ctx and the pool's per-attempt timeout.
func (pp *pipe) ensure(ctx context.Context) (net.Conn, *frameWriter, uint64, error) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.conn != nil {
		return pp.conn, pp.fw, pp.gen, nil
	}
	timeout, _ := pp.p.attemptTimeout(ctx)
	conn, err := dialCtx(ctx, pp.p.addr, timeout)
	if err != nil {
		return nil, nil, 0, err
	}
	// Handshake: magic byte, then the 8-byte client ID.
	var hs [9]byte
	hs[0] = wire.Magic
	binary.BigEndian.PutUint64(hs[1:], pp.clientID)
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(hs[:]); err != nil {
		conn.Close()
		return nil, nil, 0, err
	}
	conn.SetWriteDeadline(time.Time{})
	pp.conn = conn
	// A write error closes the conn, which wakes readLoop, which retires
	// the incarnation (fail settles the futures and stops the writer).
	pp.fw = newFrameWriter(conn, func(error) { conn.Close() })
	pp.gen++
	pp.lastRecv.Store(time.Now().UnixNano())
	go pp.readLoop(conn, pp.fw, pp.gen)
	return conn, pp.fw, pp.gen, nil
}

// readLoop drains response frames off one connection incarnation and
// settles the matching futures. Any read or decode error is terminal
// for the incarnation: the conn is discarded and every future written
// on it fails (the callers' retry machinery takes over from there).
func (pp *pipe) readLoop(conn net.Conn, fw *frameWriter, gen uint64) {
	br := bufio.NewReader(conn)
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			pp.fail(conn, fw, gen, err)
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			pp.fail(conn, fw, gen, fmt.Errorf("sockets: undecodable response: %w", err))
			return
		}
		pp.lastRecv.Store(time.Now().UnixNano())
		pp.mu.Lock()
		f := pp.pending[resp.ID]
		if f != nil && f.gen == gen {
			delete(pp.pending, resp.ID)
		} else {
			f = nil // late response to an abandoned or re-issued ID: drop
		}
		pp.mu.Unlock()
		if f != nil {
			f.ch <- pipeResult{resp: resp}
		}
	}
}

// fail retires one connection incarnation: closes it, stops its frame
// writer, clears it (if still current), and settles every future riding
// it with err.
func (pp *pipe) fail(conn net.Conn, fw *frameWriter, gen uint64, err error) {
	conn.Close()
	fw.stop()
	pp.mu.Lock()
	if pp.gen == gen && pp.conn == conn {
		pp.conn = nil
	}
	var settled []*pipeFuture
	for id, f := range pp.pending {
		if f.gen == gen {
			delete(pp.pending, id)
			settled = append(settled, f)
		}
	}
	pp.mu.Unlock()
	for _, f := range settled {
		f.ch <- pipeResult{err: err}
	}
}

// shutdown closes the live connection; its readLoop then fails the
// in-flight futures with the connection error, which doCtx's closed
// check converts to ErrPoolClosed for new requests.
func (pp *pipe) shutdown() {
	pp.mu.Lock()
	conn := pp.conn
	pp.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// register installs a future for id on generation gen. Any stale
// future under the same ID (an abandoned earlier attempt) is dropped —
// its reply, if it ever comes, no longer has an audience.
func (pp *pipe) register(id, gen uint64) *pipeFuture {
	f := &pipeFuture{gen: gen, ch: make(chan pipeResult, 1)}
	pp.mu.Lock()
	pp.pending[id] = f
	pp.mu.Unlock()
	return f
}

// unregister abandons a future (ctx cancellation or attempt timeout).
func (pp *pipe) unregister(id uint64, f *pipeFuture) {
	pp.mu.Lock()
	if pp.pending[id] == f {
		delete(pp.pending, id)
	}
	pp.mu.Unlock()
}

// binDo runs one PDU through the pipelined transport under the same
// borrow-free retry/deadline/cancellation contract as the text path's
// doCtx. The correlation ID is assigned once per logical request and
// reused across retries — that reuse is what lets the server dedupe a
// retried mutation whose first response was lost in transit.
func (p *Pool) binDo(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	if err := ctx.Err(); err != nil {
		p.canceledSeen.Add(1)
		return nil, fmt.Errorf("sockets: request aborted before first attempt: %w", err)
	}
	p.reqSeen.Add(1)
	req.ID = uint64(p.reqSeq.Add(1))
	enc := wire.AppendRequest(make([]byte, 0, 64), req)
	var lastErr error
	shed := false
	for attempt := 1; attempt <= p.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			p.retrySeen.Add(1)
			if err := p.backoff(ctx, backoffStep(attempt, shed)); err != nil {
				p.canceledSeen.Add(1)
				return nil, fmt.Errorf("sockets: request canceled in retry backoff after %d attempts: %w", attempt-1, err)
			}
		}
		p.attemptSeen.Add(1)
		resp, err := p.pipe.try(ctx, req, enc, attempt)
		if err == nil {
			if resp.Tag != wire.RespOverload {
				return resp, nil
			}
			// Shed at admission. The pipelined connection stays up — the
			// server answered, it just refused the work — so take the
			// stiffened backoff rung and retry on the same conn. The
			// reused correlation ID is safe: a shed attempt never touched
			// the dedupe table.
			p.errSeen.Add(1)
			p.overloadSeen.Add(1)
			lastErr = ErrOverload
			shed = true
			if cerr := ctx.Err(); cerr != nil {
				p.canceledSeen.Add(1)
				return nil, fmt.Errorf("sockets: request canceled after %d attempts: %w", attempt, cerr)
			}
			continue
		}
		p.errSeen.Add(1)
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			p.canceledSeen.Add(1)
			return nil, fmt.Errorf("sockets: request canceled after %d attempts: %w", attempt, cerr)
		}
		if p.closed.Load() {
			return nil, ErrPoolClosed
		}
	}
	return nil, fmt.Errorf("sockets: request failed after %d attempts: %w", p.cfg.MaxAttempts, lastErr)
}

// try performs one pipelined attempt: ensure the shared conn, register
// the future, write the frame, wait for the response / ctx / deadline.
func (pp *pipe) try(ctx context.Context, req *wire.Request, enc []byte, attempt int) (*wire.Response, error) {
	p := pp.p
	if p.cfg.PreAttempt != nil {
		p.cfg.PreAttempt(preHandleText(req), attempt)
	}
	timeout, ctxBounded := p.attemptTimeout(ctx)
	if timeout <= 0 {
		return nil, context.DeadlineExceeded
	}
	conn, fw, gen, err := pp.ensure(ctx)
	if err != nil {
		return nil, wrapCtxTimeout(ctx, ctxBounded, err)
	}
	if p.cfg.FailConn != nil && p.cfg.FailConn(int(req.ID), attempt) {
		p.failInjSeen.Add(1)
		conn.Close() // the injected mid-flight connection kill
	}
	f := pp.register(req.ID, gen)
	werr := fw.write(enc)
	if werr != nil {
		pp.unregister(req.ID, f)
		// The writer for this incarnation already died; retire the whole
		// incarnation so the retry redials.
		pp.fail(conn, fw, gen, werr)
		return nil, wrapCtxTimeout(ctx, ctxBounded, werr)
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-f.ch:
		if r.err != nil {
			return nil, wrapCtxTimeout(ctx, ctxBounded, r.err)
		}
		return r.resp, nil
	case <-ctx.Done():
		pp.unregister(req.ID, f)
		return nil, fmt.Errorf("sockets: request interrupted: %w", ctx.Err())
	case <-t.C:
		pp.unregister(req.ID, f)
		// No response within the attempt budget. If the connection has
		// been silent for the whole window the peer is likely gone
		// without a FIN (the reader can't tell); retire the incarnation
		// so the retry redials. If frames are still flowing, the server
		// is just slow on this op — leave the shared conn alone rather
		// than nuking everyone else's in-flight requests.
		if time.Since(time.Unix(0, pp.lastRecv.Load())) >= timeout {
			pp.fail(conn, fw, gen, errPipeStalled)
		}
		if ctxBounded {
			return nil, fmt.Errorf("sockets: attempt stopped by ctx deadline: %w", context.DeadlineExceeded)
		}
		return nil, fmt.Errorf("sockets: no response within %v: %w", timeout, errAttemptTimeout)
	}
}

var (
	errAttemptTimeout = errors.New("sockets: attempt timed out")
	errPipeStalled    = errors.New("sockets: pipelined connection stalled")
)

// wrapCtxTimeout mirrors the text path's deadline attribution: when the
// ctx deadline set the attempt budget, an I/O timeout IS the ctx
// deadline expiring.
func wrapCtxTimeout(ctx context.Context, ctxBounded bool, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("sockets: request interrupted: %w", cerr)
	}
	var nerr net.Error
	if ctxBounded && errors.As(err, &nerr) && nerr.Timeout() {
		return fmt.Errorf("sockets: attempt stopped by ctx deadline: %w", context.DeadlineExceeded)
	}
	return err
}

// --- binary op implementations (the typed layer over binDo) ---

// binErr converts a RespErr into the same ErrServer-wrapped error the
// text parsers produce, so callers are protocol-agnostic.
func binErr(resp *wire.Response) error {
	if resp.Tag == wire.RespErr {
		return fmt.Errorf("%w: %s", ErrServer, resp.Err)
	}
	return fmt.Errorf("%w: unexpected response tag 0x%02x", ErrServer, resp.Tag)
}

func (p *Pool) binPing(ctx context.Context) error {
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbPing})
	if err != nil {
		return err
	}
	if resp.Tag != wire.RespOK {
		return binErr(resp)
	}
	return nil
}

func (p *Pool) binSet(ctx context.Context, key, value string) error {
	if err := validateKey(key); err != nil {
		return err
	}
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbSet, Key: key, Value: []byte(value)})
	if err != nil {
		return err
	}
	if resp.Tag != wire.RespOK {
		return binErr(resp)
	}
	return nil
}

func (p *Pool) binGet(ctx context.Context, key string) (string, bool, error) {
	if err := validateKey(key); err != nil {
		return "", false, err
	}
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbGet, Key: key})
	if err != nil {
		return "", false, err
	}
	switch resp.Tag {
	case wire.RespValue:
		return string(resp.Value), true, nil
	case wire.RespNotFound:
		return "", false, nil
	}
	return "", false, binErr(resp)
}

func (p *Pool) binDel(ctx context.Context, key string) (bool, error) {
	if err := validateKey(key); err != nil {
		return false, err
	}
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbDel, Key: key})
	if err != nil {
		return false, err
	}
	switch resp.Tag {
	case wire.RespOK:
		return true, nil
	case wire.RespNotFound:
		return false, nil
	}
	return false, binErr(resp)
}

func (p *Pool) binCount(ctx context.Context) (int, error) {
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbCount})
	if err != nil {
		return 0, err
	}
	if resp.Tag != wire.RespCount {
		return 0, binErr(resp)
	}
	return int(resp.N), nil
}

func (p *Pool) binKeys(ctx context.Context) ([]string, error) {
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbKeys})
	if err != nil {
		return nil, err
	}
	if resp.Tag != wire.RespKeys {
		return nil, binErr(resp)
	}
	return resp.Keys, nil
}

func (p *Pool) binMDel(ctx context.Context, keys []string) (int, error) {
	deleted := 0
	for _, chunk := range chunkKeys(keys) {
		resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbMDel, Keys: chunk})
		if err != nil {
			return deleted, err
		}
		if resp.Tag != wire.RespCount {
			return deleted, binErr(resp)
		}
		deleted += int(resp.N)
	}
	return deleted, nil
}

func (p *Pool) binMGet(ctx context.Context, keys []string) ([]string, []bool, error) {
	values := make([]string, 0, len(keys))
	found := make([]bool, 0, len(keys))
	for _, chunk := range chunkKeys(keys) {
		resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbMGet, Keys: chunk})
		if err != nil {
			return nil, nil, err
		}
		if resp.Tag != wire.RespMulti || len(resp.Values) != len(chunk) {
			return nil, nil, binErr(resp)
		}
		for i := range chunk {
			values = append(values, string(resp.Values[i]))
			found = append(found, resp.Found[i])
		}
	}
	return values, found, nil
}

func (p *Pool) binMPut(ctx context.Context, pairs []wire.KV) error {
	for _, chunk := range chunkPairs(pairs) {
		resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbMPut, Pairs: chunk})
		if err != nil {
			return err
		}
		if resp.Tag != wire.RespCount {
			return binErr(resp)
		}
	}
	return nil
}

func (p *Pool) binSetV(ctx context.Context, key, value string) (uint64, error) {
	if err := validateKey(key); err != nil {
		return 0, err
	}
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbSetV, Key: key, Value: []byte(value)})
	if err != nil {
		return 0, err
	}
	if resp.Tag != wire.RespCount {
		return 0, binErr(resp)
	}
	return resp.N, nil
}

func (p *Pool) binTree(ctx context.Context, spans []wire.Span) ([]uint64, error) {
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbTree, Spans: spans})
	if err != nil {
		return nil, err
	}
	if resp.Tag != wire.RespHashes || len(resp.Hashes) != len(spans) {
		return nil, binErr(resp)
	}
	return resp.Hashes, nil
}

func (p *Pool) binScan(ctx context.Context, spans []wire.Span) ([]wire.ScanEntry, error) {
	resp, err := p.binDo(ctx, &wire.Request{Verb: wire.VerbScan, Spans: spans})
	if err != nil {
		return nil, err
	}
	if resp.Tag != wire.RespScan {
		return nil, binErr(resp)
	}
	return resp.Scan, nil
}

// chunkKeys splits a key list so each batch PDU stays well under the
// frame limit (same budget as the text path's MDEL chunking).
func chunkKeys(keys []string) [][]string {
	var out [][]string
	for len(keys) > 0 {
		n, bytes := 0, 0
		for n < len(keys) && (n == 0 || bytes+len(keys[n])+10 <= mdelChunkBytes) {
			bytes += len(keys[n]) + 10
			n++
		}
		out = append(out, keys[:n])
		keys = keys[n:]
	}
	return out
}

// chunkPairs splits an MPUT batch by payload bytes, keys and values
// both counted.
func chunkPairs(pairs []wire.KV) [][]wire.KV {
	var out [][]wire.KV
	for len(pairs) > 0 {
		n, bytes := 0, 0
		for n < len(pairs) && (n == 0 || bytes+len(pairs[n].Key)+len(pairs[n].Value)+20 <= mputChunkBytes) {
			bytes += len(pairs[n].Key) + len(pairs[n].Value) + 20
			n++
		}
		out = append(out, pairs[:n])
		pairs = pairs[n:]
	}
	return out
}

// mputChunkBytes bounds one MPUT request's payload; values can be big,
// so the budget is larger than the key-only chunks but still far under
// MaxFrame.
const mputChunkBytes = 256 << 10
