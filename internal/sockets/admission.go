package sockets

import (
	"errors"
	"time"

	"repro/internal/metrics"
)

// ErrOverload is the typed client-side error for a request the server
// shed at admission: the node's bounded pending-request queue was full,
// so instead of queueing (and letting latency collapse for everyone) it
// answered immediately with an overload status — "OVERLOAD" on the text
// protocol, wire.RespOverload on the binary one. The Pool treats it as
// retryable (the existing jittered backoff spaces the retries out), and
// wraps it into the final error when every attempt was shed, so callers
// can errors.Is for it and distinguish "healthy node saying not now"
// from a dead peer.
var ErrOverload = errors.New("sockets: server overloaded, request shed")

// textOverload is the text protocol's shed response line.
const textOverload = "OVERLOAD"

// serverVerbs are the per-verb latency histogram keys — the text
// protocol's command words, which the binary protocol's verbs also map
// onto (wire.VerbName).
var serverVerbs = []string{"PING", "SET", "GET", "DEL", "MDEL", "COUNT", "KEYS", "MGET", "MPUT", "SETV", "TREE", "SCAN", "SYNCWAL"}

// Verbs returns the fixed set of per-verb latency keys, in display
// order.
func Verbs() []string {
	out := make([]string, len(serverVerbs))
	copy(out, serverVerbs)
	return out
}

// admit reserves one slot in the node's bounded pending set, or reports
// overload when MaxPending slots are taken (counting the shed). With
// MaxPending <= 0 shedding is disabled but the depth gauge still
// tracks, so an unprotected node's queue growth stays observable.
// PING is exempt at the call sites: shedding heartbeats would make an
// overloaded node look dead, triggering hinted handoff and re-replication
// — extra write load at exactly the wrong moment.
func (s *Server) admit() bool {
	if s.maxPending <= 0 {
		s.notePeak(s.pending.Add(1))
		return true
	}
	for {
		cur := s.pending.Load()
		if cur >= int64(s.maxPending) {
			s.shedSeen.Add(1)
			return false
		}
		if s.pending.CompareAndSwap(cur, cur+1) {
			s.notePeak(cur + 1)
			return true
		}
	}
}

// release frees an admitted request's slot once its response is on the
// way out.
func (s *Server) release() { s.pending.Add(-1) }

func (s *Server) notePeak(p int64) {
	for {
		peak := s.pendingPeak.Load()
		if p <= peak || s.pendingPeak.CompareAndSwap(peak, p) {
			return
		}
	}
}

// Shed reports how many requests admission control turned away.
func (s *Server) Shed() int64 { return s.shedSeen.Load() }

// Pending reports the current admitted-but-unanswered request count.
func (s *Server) Pending() int64 { return s.pending.Load() }

// PendingPeak reports the high-water mark of the pending gauge — how
// deep the queue actually got, which is what sizing MaxPending needs.
func (s *Server) PendingPeak() int64 { return s.pendingPeak.Load() }

// VerbLatency returns the latency histogram for one verb (a key from
// Verbs()), or nil for unknown verbs. The map is fixed at construction
// and read-only afterwards, so lookups need no lock.
func (s *Server) VerbLatency(verb string) *metrics.Histogram { return s.verbLat[verb] }

// observeVerb records one request's latency on its verb's histogram.
// Unknown verbs (text garbage) only hit the aggregate histogram.
func (s *Server) observeVerb(verb string, d time.Duration) {
	if h := s.verbLat[verb]; h != nil {
		h.Observe(d)
	}
}
