package sockets

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/merkle"
	"repro/internal/sockets/wire"
	"repro/internal/version"
)

// SETV outcome codes, carried in the RespCount body (text: "SETV <n>").
// The verb is a version-conditional set: the server decodes the stored
// value's stamp, compares it to the incoming one, and applies the write
// only if the incoming version wins the cluster's total order. The
// split between plain and concurrent outcomes is what lets hint replay
// count conflicting histories instead of silently dropping them.
const (
	// SetVApplied: the incoming version strictly dominates what was
	// stored (or nothing decodable was stored) — the write landed.
	SetVApplied uint64 = 0
	// SetVAppliedConcurrent: the versions were causally concurrent and
	// the incoming one won the tiebreak — the write landed.
	SetVAppliedConcurrent uint64 = 1
	// SetVStale: the stored version dominates or equals the incoming
	// one — nothing changed.
	SetVStale uint64 = 2
	// SetVStaleConcurrent: the versions were causally concurrent and
	// the stored one won the tiebreak — nothing changed.
	SetVStaleConcurrent uint64 = 3
)

// SetVAppliedCode reports whether a SETV outcome code means the write
// was applied.
func SetVAppliedCode(code uint64) bool {
	return code == SetVApplied || code == SetVAppliedConcurrent
}

// setvOutcome compares an incoming encoded value against the stored one
// and decides whether to apply. An undecodable or missing stored value
// loses: SETV's callers always carry well-formed stamps, so whatever is
// there predates the versioning scheme or was corrupted — either way
// the stamped write is the one to keep.
func setvOutcome(cur string, curOK bool, in version.Version) (apply bool, code uint64) {
	if !curOK {
		return true, SetVApplied
	}
	curV, _, _, err := version.Decode(cur)
	if err != nil {
		return true, SetVApplied
	}
	conc := in.Compare(curV) == version.Concurrent
	switch {
	case version.Newer(in, curV) && conc:
		return true, SetVAppliedConcurrent
	case version.Newer(in, curV):
		return true, SetVApplied
	case conc:
		return false, SetVStaleConcurrent
	}
	return false, SetVStale
}

// digestApply folds one store mutation into the anti-entropy digest.
// Runs under the shard lock that ordered the mutation; excluded keys
// (hints) never touch the digest.
func (s *Server) digestApply(key, oldValue, newValue string, hadOld, hasNew bool) {
	if s.syncExclude != "" && strings.HasPrefix(key, s.syncExclude) {
		return
	}
	s.digest.Apply(key, oldValue, newValue, hadOld, hasNew)
}

// clampSpan clips a wire span to the digest's bucket universe.
func clampSpan(sp wire.Span) (lo, hi int) {
	lo, hi = int(sp.Lo), int(sp.Hi)
	if hi > merkle.Buckets {
		hi = merkle.Buckets
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// parseTextSpans parses the text protocol's "lo-hi" span tokens.
func parseTextSpans(tokens []string) ([]wire.Span, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("usage: TREE|SCAN lo-hi [lo-hi ...]")
	}
	spans := make([]wire.Span, 0, len(tokens))
	for _, tok := range tokens {
		dash := strings.IndexByte(tok, '-')
		if dash <= 0 {
			return nil, fmt.Errorf("bad span %q (want lo-hi)", tok)
		}
		lo, err := strconv.ParseUint(tok[:dash], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad span %q: %v", tok, err)
		}
		hi, err := strconv.ParseUint(tok[dash+1:], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad span %q: %v", tok, err)
		}
		if lo >= hi {
			return nil, fmt.Errorf("empty span %q", tok)
		}
		spans = append(spans, wire.Span{Lo: uint32(lo), Hi: uint32(hi)})
	}
	return spans, nil
}

// --- text-protocol client parsers (shared by Client and Pool) ---

func doSetV(rt roundTripper, key, value string) (uint64, error) {
	if err := validateKey(key); err != nil {
		return 0, err
	}
	if err := validateTextValue(value); err != nil {
		return 0, err
	}
	resp, err := rt("SETV " + key + " " + value)
	if err != nil {
		return 0, err
	}
	var code uint64
	if _, err := fmt.Sscanf(resp, "SETV %d", &code); err != nil {
		return 0, fmt.Errorf("%w: %s", ErrServer, resp)
	}
	return code, nil
}

func textSpans(spans []wire.Span) string {
	toks := make([]string, 0, len(spans))
	for _, sp := range spans {
		toks = append(toks, fmt.Sprintf("%d-%d", sp.Lo, sp.Hi))
	}
	return strings.Join(toks, " ")
}

func doTree(rt roundTripper, spans []wire.Span) ([]uint64, error) {
	resp, err := rt("TREE " + textSpans(spans))
	if err != nil {
		return nil, err
	}
	if resp != "HASHES" && !strings.HasPrefix(resp, "HASHES ") {
		return nil, fmt.Errorf("%w: %s", ErrServer, resp)
	}
	fields := strings.Fields(resp)[1:]
	if len(fields) != len(spans) {
		return nil, fmt.Errorf("%w: %d hashes for %d spans", ErrServer, len(fields), len(spans))
	}
	out := make([]uint64, 0, len(fields))
	for _, f := range fields {
		h, err := strconv.ParseUint(f, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad hash %q", ErrServer, f)
		}
		out = append(out, h)
	}
	return out, nil
}

func doScan(rt roundTripper, spans []wire.Span) ([]wire.ScanEntry, error) {
	resp, err := rt("SCAN " + textSpans(spans))
	if err != nil {
		return nil, err
	}
	if resp != "SCAN" && !strings.HasPrefix(resp, "SCAN ") {
		return nil, fmt.Errorf("%w: %s", ErrServer, resp)
	}
	fields := strings.Fields(resp)[1:]
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("%w: odd scan field count %d", ErrServer, len(fields))
	}
	out := make([]wire.ScanEntry, 0, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		h, err := strconv.ParseUint(fields[i+1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad entry hash %q", ErrServer, fields[i+1])
		}
		out = append(out, wire.ScanEntry{Key: fields[i], Hash: h})
	}
	return out, nil
}

// applyTree answers TREE: one range hash per requested span.
func (s *Server) applyTree(r *wire.Request) *wire.Response {
	resp := &wire.Response{Tag: wire.RespHashes, ID: r.ID, Hashes: make([]uint64, 0, len(r.Spans))}
	for _, sp := range r.Spans {
		lo, hi := clampSpan(sp)
		resp.Hashes = append(resp.Hashes, s.digest.RangeHash(lo, hi))
	}
	return resp
}

// applyScan answers SCAN: every stored (key, entry hash) whose Merkle
// bucket falls inside any requested span, sorted by key. Values never
// leave the node here — the driver compares entry hashes and fetches
// only the keys that actually differ. Shards are read-locked one at a
// time (point-in-time per stripe, like COUNT); anti-entropy tolerates
// the skew — a transiently wrong hash just re-scans next round.
func (s *Server) applyScan(r *wire.Request) *wire.Response {
	resp := &wire.Response{Tag: wire.RespScan, ID: r.ID}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.RLock()
		for k, v := range sh.store {
			if s.syncExclude != "" && strings.HasPrefix(k, s.syncExclude) {
				continue
			}
			b := uint32(merkle.BucketOf(k))
			for _, sp := range r.Spans {
				if b >= sp.Lo && b < sp.Hi {
					resp.Scan = append(resp.Scan, wire.ScanEntry{Key: k, Hash: merkle.EntryHash(k, v)})
					break
				}
			}
		}
		sh.lock.RUnlock()
	}
	sort.Slice(resp.Scan, func(i, j int) bool { return resp.Scan[i].Key < resp.Scan[j].Key })
	return resp
}
