package sockets

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []string{"", "a", "hello world", strings.Repeat("x", 10000)}
	for _, m := range msgs {
		if err := WriteFrame(&buf, []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized write should error")
	}
	// Forged oversized header.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized header should error")
	}
	// Truncated payload.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 'h', 'i'})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated frame should error")
	}
}

func TestKVBasics(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("course", "cs31"); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("course")
	if err != nil || !found || v != "cs31" {
		t.Errorf("Get = %q %v %v", v, found, err)
	}
	if _, found, _ := c.Get("missing"); found {
		t.Error("missing key reported found")
	}
	if err := c.Set("spaces", "value with spaces"); err != nil {
		t.Fatal(err)
	}
	v, _, _ = c.Get("spaces")
	if v != "value with spaces" {
		t.Errorf("spaces value = %q", v)
	}
	n, err := c.Count()
	if err != nil || n != 2 {
		t.Errorf("Count = %d %v", n, err)
	}
	ok, err := c.Del("course")
	if err != nil || !ok {
		t.Errorf("Del = %v %v", ok, err)
	}
	ok, _ = c.Del("course")
	if ok {
		t.Error("second delete should report missing")
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				key := fmt.Sprintf("k-%d-%d", i, j)
				if err := c.Set(key, fmt.Sprintf("v%d", j)); err != nil {
					errs <- err
					return
				}
				v, found, err := c.Get(key)
				if err != nil || !found || v != fmt.Sprintf("v%d", j) {
					errs <- fmt.Errorf("get %s = %q %v %v", key, v, found, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c, _ := Dial(s.Addr())
	defer c.Close()
	n, err := c.Count()
	if err != nil || n != clients*perClient {
		t.Errorf("Count = %d, want %d (%v)", n, clients*perClient, err)
	}
	st := s.Stats()
	if st.Connections < clients {
		t.Errorf("connections = %d", st.Connections)
	}
	if st.Requests < clients*perClient*2 {
		t.Errorf("requests = %d", st.Requests)
	}
}

func TestProtocolErrors(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.roundTrip("BOGUS stuff")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR") {
		t.Errorf("resp = %q", resp)
	}
	resp, _ = c.roundTrip("SET onlykey")
	if !strings.HasPrefix(resp, "ERR") {
		t.Errorf("malformed SET resp = %q", resp)
	}
	resp, _ = c.roundTrip("GET")
	if !strings.HasPrefix(resp, "ERR") {
		t.Errorf("malformed GET resp = %q", resp)
	}
}

func TestVisibilityAcrossConnections(t *testing.T) {
	s := startServer(t)
	a, _ := Dial(s.Addr())
	defer a.Close()
	b, _ := Dial(s.Addr())
	defer b.Close()
	if err := a.Set("shared", "42"); err != nil {
		t.Fatal(err)
	}
	v, found, err := b.Get("shared")
	if err != nil || !found || v != "42" {
		t.Errorf("cross-connection read = %q %v %v", v, found, err)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	if c, err := Dial(addr); err == nil {
		// Connection may be accepted by the OS backlog; a request must fail.
		if err := c.Ping(); err == nil {
			t.Error("ping succeeded after Close")
		}
		c.Close()
	}
}
