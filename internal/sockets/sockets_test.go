package sockets

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []string{"", "a", "hello world", strings.Repeat("x", 10000)}
	for _, m := range msgs {
		if err := WriteFrame(&buf, []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized write should error")
	}
	// Forged oversized header.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized header should error")
	}
	// Truncated payload.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 'h', 'i'})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated frame should error")
	}
}

func TestKVBasics(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("course", "cs31"); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("course")
	if err != nil || !found || v != "cs31" {
		t.Errorf("Get = %q %v %v", v, found, err)
	}
	if _, found, _ := c.Get("missing"); found {
		t.Error("missing key reported found")
	}
	if err := c.Set("spaces", "value with spaces"); err != nil {
		t.Fatal(err)
	}
	v, _, _ = c.Get("spaces")
	if v != "value with spaces" {
		t.Errorf("spaces value = %q", v)
	}
	n, err := c.Count()
	if err != nil || n != 2 {
		t.Errorf("Count = %d %v", n, err)
	}
	ok, err := c.Del("course")
	if err != nil || !ok {
		t.Errorf("Del = %v %v", ok, err)
	}
	ok, _ = c.Del("course")
	if ok {
		t.Error("second delete should report missing")
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				key := fmt.Sprintf("k-%d-%d", i, j)
				if err := c.Set(key, fmt.Sprintf("v%d", j)); err != nil {
					errs <- err
					return
				}
				v, found, err := c.Get(key)
				if err != nil || !found || v != fmt.Sprintf("v%d", j) {
					errs <- fmt.Errorf("get %s = %q %v %v", key, v, found, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c, _ := Dial(s.Addr())
	defer c.Close()
	n, err := c.Count()
	if err != nil || n != clients*perClient {
		t.Errorf("Count = %d, want %d (%v)", n, clients*perClient, err)
	}
	st := s.Stats()
	if st.Connections < clients {
		t.Errorf("connections = %d", st.Connections)
	}
	if st.Requests < clients*perClient*2 {
		t.Errorf("requests = %d", st.Requests)
	}
}

func TestProtocolErrors(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.roundTrip("BOGUS stuff")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR") {
		t.Errorf("resp = %q", resp)
	}
	resp, _ = c.roundTrip("SET onlykey")
	if !strings.HasPrefix(resp, "ERR") {
		t.Errorf("malformed SET resp = %q", resp)
	}
	resp, _ = c.roundTrip("GET")
	if !strings.HasPrefix(resp, "ERR") {
		t.Errorf("malformed GET resp = %q", resp)
	}
}

func TestVisibilityAcrossConnections(t *testing.T) {
	s := startServer(t)
	a, _ := Dial(s.Addr())
	defer a.Close()
	b, _ := Dial(s.Addr())
	defer b.Close()
	if err := a.Set("shared", "42"); err != nil {
		t.Fatal(err)
	}
	v, found, err := b.Get("shared")
	if err != nil || !found || v != "42" {
		t.Errorf("cross-connection read = %q %v %v", v, found, err)
	}
}

func TestFrameBoundaries(t *testing.T) {
	var buf bytes.Buffer
	// Zero-length frame round-trips.
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("zero-length frame = %q, %v", got, err)
	}
	// A frame of exactly MaxFrame is legal on both sides.
	buf.Reset()
	big := bytes.Repeat([]byte{'x'}, MaxFrame)
	if err := WriteFrame(&buf, big); err != nil {
		t.Fatalf("MaxFrame write: %v", err)
	}
	got, err = ReadFrame(&buf)
	if err != nil || len(got) != MaxFrame {
		t.Errorf("MaxFrame read = %d bytes, %v", len(got), err)
	}
	// MaxFrame+1 is rejected by the reader even when forged.
	buf.Reset()
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0x00, 0x10, 0x00, 0x01 // 1<<20 + 1
	buf.Write(hdr[:])
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("MaxFrame+1 header should error")
	}
	// Truncated header: fewer than 4 bytes then EOF.
	buf.Reset()
	buf.Write([]byte{0, 0})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated header should error")
	}
}

func TestKeysCommand(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys, err := c.Keys()
	if err != nil || len(keys) != 0 {
		t.Errorf("empty Keys = %v, %v", keys, err)
	}
	for _, k := range []string{"cherry", "apple", "banana"} {
		if err := c.Set(k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	keys, err = c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"apple", "banana", "cherry"}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v (sorted)", keys, want)
		}
	}
}

func TestKeyValidation(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, bad := range []string{"", "two words", "tab\tkey", "line\nbreak"} {
		if err := c.Set(bad, "v"); !errors.Is(err, ErrBadKey) {
			t.Errorf("Set(%q) = %v, want ErrBadKey", bad, err)
		}
		if _, _, err := c.Get(bad); !errors.Is(err, ErrBadKey) {
			t.Errorf("Get(%q) = %v, want ErrBadKey", bad, err)
		}
		if _, err := c.Del(bad); !errors.Is(err, ErrBadKey) {
			t.Errorf("Del(%q) = %v, want ErrBadKey", bad, err)
		}
	}
	// The rejection happens client-side: no store corruption.
	if n, err := c.Count(); err != nil || n != 0 {
		t.Errorf("Count after rejected sets = %d, %v", n, err)
	}
}

func TestShardedStoreSpreadsKeys(t *testing.T) {
	s, err := NewServerConfig("127.0.0.1:0", ServerConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 64; i++ {
		if err := c.Set(fmt.Sprintf("key-%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	occupied, total := 0, 0
	for i := range s.shards {
		if n := len(s.shards[i].store); n > 0 {
			occupied++
			total += n
		}
	}
	if total != 64 {
		t.Errorf("shards hold %d keys, want 64", total)
	}
	if occupied < 2 {
		t.Errorf("only %d of 8 shards occupied — FNV striping is broken", occupied)
	}
	// COUNT and KEYS must agree across stripes.
	if n, err := c.Count(); err != nil || n != 64 {
		t.Errorf("Count = %d, %v", n, err)
	}
	keys, err := c.Keys()
	if err != nil || len(keys) != 64 {
		t.Errorf("Keys len = %d, %v", len(keys), err)
	}
}

func TestServerDrainsInFlightOnClose(t *testing.T) {
	s, err := NewServerConfig("127.0.0.1:0", ServerConfig{Shards: 4, DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	const delay = 150 * time.Millisecond
	started := make(chan struct{}, 1)
	s.preHandle = func(req string) {
		if strings.HasPrefix(req, "SET") {
			started <- struct{}{}
			time.Sleep(delay)
		}
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setDone := make(chan error, 1)
	go func() { setDone <- c.Set("slow", "request") }()
	<-started // the request is observably in-flight
	closeStart := time.Now()
	if err := s.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	closeElapsed := time.Since(closeStart)
	// Close must have waited for the in-flight request...
	if err := <-setDone; err != nil {
		t.Errorf("in-flight Set was cut instead of drained: %v", err)
	}
	if closeElapsed < delay/2 {
		t.Errorf("Close returned in %v, before the in-flight request could finish", closeElapsed)
	}
	// ...and the connection is shut afterwards.
	if err := c.Ping(); err == nil {
		t.Error("ping succeeded after drain-close")
	}
}

func TestServerCloseCutsIdleConnectionsQuickly(t *testing.T) {
	s, err := NewServerConfig("127.0.0.1:0", ServerConfig{DrainTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	s.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Close with only an idle connection took %v — idle conns should be cut, not drained", elapsed)
	}
}

func TestServerErrorCounter(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.roundTrip("BOGUS"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.roundTrip("SET onlykey"); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Errors != 2 {
		t.Errorf("Errors = %d, want 2", st.Errors)
	}
	if st.Requests != 3 {
		t.Errorf("Requests = %d, want 3", st.Requests)
	}
	if s.Latency().Count() != st.Requests {
		t.Errorf("latency histogram has %d observations, want %d", s.Latency().Count(), st.Requests)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	if c, err := Dial(addr); err == nil {
		// Connection may be accepted by the OS backlog; a request must fail.
		if err := c.Ping(); err == nil {
			t.Error("ping succeeded after Close")
		}
		c.Close()
	}
}

func TestMDelCommand(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a mix of present and missing keys: only present ones count.
	n, err := c.MDel("k0", "k1", "k2", "missing", "k3")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("MDel deleted %d, want 4", n)
	}
	left, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	if left != 6 {
		t.Errorf("count after MDel = %d, want 6", left)
	}
	// Zero keys is a client-side no-op.
	if n, err := c.MDel(); err != nil || n != 0 {
		t.Errorf("empty MDel = (%d, %v)", n, err)
	}
	// Bad keys are rejected before touching the wire.
	if _, err := c.MDel("ok", "bad key"); !errors.Is(err, ErrBadKey) {
		t.Errorf("whitespace key error = %v, want ErrBadKey", err)
	}
	// Bare MDEL on the wire is a usage error.
	resp := rawRequest(t, s.Addr(), "MDEL")
	if !strings.HasPrefix(resp, "ERR") {
		t.Errorf("bare MDEL = %q, want ERR", resp)
	}
}

func TestMDelChunksLargeBatches(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Enough long keys that one MDEL frame would blow mdelChunkBytes
	// many times over; the client must split transparently.
	const n = 4000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d-%s", i, strings.Repeat("x", 60))
		if err := c.Set(keys[i], "v"); err != nil {
			t.Fatal(err)
		}
	}
	deleted, err := c.MDel(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != n {
		t.Errorf("MDel deleted %d, want %d", deleted, n)
	}
	if left, _ := c.Count(); left != 0 {
		t.Errorf("count after chunked MDel = %d", left)
	}
}

// rawRequest opens a bare connection and round-trips one frame, for
// protocol cases the typed clients refuse to send.
func rawRequest(t *testing.T, addr, req string) string {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.roundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
