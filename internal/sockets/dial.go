package sockets

import (
	"context"
	"net"
	"time"
)

// dialCtx is the package's one sanctioned TCP dial: it honors both the
// per-attempt timeout and the caller's context, so a canceled caller
// never sits out a full dial timeout. scripts/lint-blocking.sh allowlists
// this file; new code must route dials through here instead of calling
// net.DialTimeout directly.
func dialCtx(ctx context.Context, addr string, timeout time.Duration) (net.Conn, error) {
	d := net.Dialer{Timeout: timeout}
	return d.DialContext(ctx, "tcp", addr)
}

// aLongTimeAgo is a past deadline used to wake a blocked Read/Write when
// a context is canceled mid-round-trip (the net package's own idiom).
var aLongTimeAgo = time.Unix(1, 0)
