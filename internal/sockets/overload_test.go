// Overload integration tests: drive a node past its admission bound and
// assert the whole pushback loop — server sheds, Pool backs off and
// retries, typed ErrOverload after exhausted attempts, service restored
// once the queue drains, nothing leaked. External package so the tests
// can use testutil (in-package sockets tests cannot; see testutil's
// package comment).
package sockets_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sockets"
	"repro/internal/testutil"
)

func TestPoolOverload(t *testing.T) {
	for _, proto := range []sockets.Proto{sockets.ProtoText, sockets.ProtoBinary} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			base := testutil.SettleGoroutines()

			const maxPending = 2
			gate := make(chan struct{})
			arrived := make(chan string, 16)
			srv := testutil.StartKV(t, sockets.ServerConfig{
				MaxPending:   maxPending,
				DrainTimeout: time.Second,
				PreHandle: func(req string) {
					if strings.Contains(req, "wedge") {
						arrived <- req
						<-gate
					}
				},
			})

			mkPool := func(attempts int) *sockets.Pool {
				p, err := sockets.NewPool(srv.Addr(), sockets.PoolConfig{
					Proto:       proto,
					MaxAttempts: attempts,
					Timeout:     10 * time.Second,
					BackoffBase: time.Millisecond,
					BackoffMax:  5 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { p.Close() })
				return p
			}
			wedgePool := mkPool(1)
			probePool := mkPool(3)

			// Fill every admission slot with requests wedged inside the
			// server's PreHandle hook.
			var wg sync.WaitGroup
			wedgeErrs := make([]error, maxPending)
			for i := 0; i < maxPending; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, _, wedgeErrs[i] = wedgePool.Get("wedge")
				}()
			}
			for i := 0; i < maxPending; i++ {
				select {
				case <-arrived:
				case <-time.After(5 * time.Second):
					t.Fatal("wedged request never reached the server")
				}
			}

			// The node is full: a probe must be shed on every attempt and
			// surface the typed error after the bounded retry ladder — not
			// hang, not storm.
			_, _, err := probePool.Get("other")
			if !errors.Is(err, sockets.ErrOverload) {
				t.Fatalf("probe error = %v, want ErrOverload", err)
			}
			st := probePool.Stats()
			if st.Retries != 2 {
				t.Errorf("probe retries = %d, want 2 (MaxAttempts-1: backoff between attempts, no storm)", st.Retries)
			}
			if got := probePool.Overloads(); got != 3 {
				t.Errorf("probe overload count = %d, want 3 (one per attempt)", got)
			}
			if shed := srv.Shed(); shed != 3 {
				t.Errorf("server shed count = %d, want 3", shed)
			}
			if peak := srv.PendingPeak(); peak != maxPending {
				t.Errorf("pending peak = %d, want %d", peak, maxPending)
			}

			// Heartbeats must get through a saturated node: shedding PING
			// would make overload look like death to the failure detector.
			if err := probePool.Ping(); err != nil {
				t.Errorf("PING through a saturated node failed: %v", err)
			}

			// Drain: release the gate, let the wedged requests finish, and
			// service comes back without new connections or restarts.
			close(gate)
			wg.Wait()
			for i, werr := range wedgeErrs {
				if werr != nil {
					t.Errorf("wedged request %d failed: %v", i, werr)
				}
			}
			if err := probePool.Set("other", "v"); err != nil {
				t.Fatalf("request after drain failed: %v", err)
			}
			if v, ok, err := probePool.Get("other"); err != nil || !ok || v != "v" {
				t.Fatalf("read after drain = %q, %v, %v", v, ok, err)
			}
			if pending := srv.Pending(); pending != 0 {
				t.Errorf("pending = %d after drain, want 0", pending)
			}

			wedgePool.Close()
			probePool.Close()
			srv.Close()
			testutil.CheckNoGoroutineLeak(t, base, 3)
		})
	}
}

func TestServerNoSheddingWhenUnbounded(t *testing.T) {
	// MaxPending 0 disables shedding but the depth gauge still tracks.
	gate := make(chan struct{})
	arrived := make(chan struct{}, 8)
	srv := testutil.StartKV(t, sockets.ServerConfig{
		DrainTimeout: time.Second,
		PreHandle: func(req string) {
			if strings.Contains(req, "wedge") {
				arrived <- struct{}{}
				<-gate
			}
		},
	})
	p, err := sockets.NewPool(srv.Addr(), sockets.PoolConfig{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Get("wedge") //nolint:errcheck // liveness is the assertion
		}()
	}
	for i := 0; i < 3; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatal("wedged request never reached the server")
		}
	}
	if got := srv.Pending(); got != 3 {
		t.Errorf("pending = %d, want 3", got)
	}
	if srv.Shed() != 0 {
		t.Errorf("shed = %d with MaxPending 0, want 0", srv.Shed())
	}
	close(gate)
	wg.Wait()
	if peak := srv.PendingPeak(); peak < 3 {
		t.Errorf("pending peak = %d, want >= 3", peak)
	}
}
