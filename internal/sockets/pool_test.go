package sockets

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPoolBasics(t *testing.T) {
	s := startServer(t)
	p, err := NewPool(s.Addr(), PoolConfig{Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("k", "v with spaces"); err != nil {
		t.Fatal(err)
	}
	v, found, err := p.Get("k")
	if err != nil || !found || v != "v with spaces" {
		t.Errorf("Get = %q %v %v", v, found, err)
	}
	if ok, err := p.Del("k"); err != nil || !ok {
		t.Errorf("Del = %v %v", ok, err)
	}
	if err := p.Set("bad key", "v"); !errors.Is(err, ErrBadKey) {
		t.Errorf("Set with space = %v, want ErrBadKey", err)
	}
	st := p.Stats()
	if st.Requests != 4 { // the rejected key never became a request
		t.Errorf("Requests = %d, want 4", st.Requests)
	}
	if st.Retries != 0 || st.Errors != 0 {
		t.Errorf("clean run recorded retries=%d errors=%d", st.Retries, st.Errors)
	}
}

func TestPoolConcurrent(t *testing.T) {
	s := startServer(t)
	p, err := NewPool(s.Addr(), PoolConfig{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-i%d", w, i)
				if err := p.Set(key, "v"); err != nil {
					errs <- err
					return
				}
				if _, found, err := p.Get(key); err != nil || !found {
					errs <- fmt.Errorf("get %s: found=%v err=%v", key, found, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, err := p.Count(); err != nil || n != workers*perWorker {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestPoolRetriesThroughInjectedFaults(t *testing.T) {
	s := startServer(t)
	// Kill the connection on the first attempt of every request: each
	// request must succeed on attempt 2 over a fresh dial.
	p, err := NewPool(s.Addr(), PoolConfig{
		Size:        2,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		FailConn:    func(req, attempt int) bool { return attempt == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 20
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := p.Set(key, "v"); err != nil {
			t.Fatalf("Set %s: %v", key, err)
		}
		if _, found, err := p.Get(key); err != nil || !found {
			t.Fatalf("Get %s: found=%v err=%v", key, found, err)
		}
	}
	st := p.Stats()
	if st.Requests != 2*n {
		t.Errorf("Requests = %d, want %d", st.Requests, 2*n)
	}
	if st.Retries != 2*n {
		t.Errorf("Retries = %d, want %d (one per request)", st.Retries, 2*n)
	}
	if st.Errors != 2*n {
		t.Errorf("Errors = %d, want %d", st.Errors, 2*n)
	}
}

func TestPoolExhaustsRetryBudget(t *testing.T) {
	s := startServer(t)
	p, err := NewPool(s.Addr(), PoolConfig{
		Size:        1,
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		FailConn:    func(req, attempt int) bool { return true }, // every attempt dies
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Set("k", "v"); err == nil {
		t.Fatal("Set should fail when every attempt is killed")
	}
	st := p.Stats()
	if st.Retries != 1 || st.Errors != 2 {
		t.Errorf("retries=%d errors=%d, want 1 and 2", st.Retries, st.Errors)
	}
}

func TestPoolDeadline(t *testing.T) {
	s, err := NewServerConfig("127.0.0.1:0", ServerConfig{DrainTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.preHandle = func(string) { time.Sleep(300 * time.Millisecond) }
	p, err := NewPool(s.Addr(), PoolConfig{
		Size:        1,
		MaxAttempts: 2,
		Timeout:     50 * time.Millisecond,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	if err := p.Ping(); err == nil {
		t.Error("ping should exceed the per-request deadline")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

func TestPoolClosed(t *testing.T) {
	s := startServer(t)
	p, err := NewPool(s.Addr(), PoolConfig{Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
	if err := p.Ping(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("request after close = %v, want ErrPoolClosed", err)
	}
}

func TestPoolDialFailure(t *testing.T) {
	if _, err := NewPool("127.0.0.1:1", PoolConfig{Timeout: 200 * time.Millisecond}); err == nil {
		t.Error("NewPool to a dead address should fail fast")
	}
}

func TestPoolCounterSet(t *testing.T) {
	s := startServer(t)
	// One injected kill on the first attempt of every request: each
	// request costs 2 attempts, 1 retry, 1 failed attempt, 1 injection.
	p, err := NewPool(s.Addr(), PoolConfig{
		Size:        2,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		FailConn:    func(req, attempt int) bool { return attempt == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 10
	for i := 0; i < n; i++ {
		if err := p.Set(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	cs := p.Counters()
	want := map[string]float64{
		"pool.requests":            n,
		"pool.attempts":            2 * n,
		"pool.retries":             n,
		"pool.failed-attempts":     n,
		"pool.failconn-injections": n,
	}
	for name, v := range want {
		got, ok := cs.Get(name)
		if !ok || got != v {
			t.Errorf("%s = %v (present %v), want %v", name, got, ok, v)
		}
	}
	// The rendered table carries every counter for benchmark output.
	str := cs.String()
	for name := range want {
		if !strings.Contains(str, name) {
			t.Errorf("CounterSet.String() missing %s:\n%s", name, str)
		}
	}
}

func TestPoolPreAttemptHook(t *testing.T) {
	s := startServer(t)
	var mu sync.Mutex
	var seen []string
	var attempts []int
	p, err := NewPool(s.Addr(), PoolConfig{
		Size:        1,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		// Kill the first attempt of every request so the hook is seen
		// on the retry too.
		FailConn: func(req, attempt int) bool { return attempt == 1 },
		PreAttempt: func(req string, attempt int) {
			mu.Lock()
			seen = append(seen, req)
			attempts = append(attempts, attempt)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != "SET k v" || seen[1] != "SET k v" {
		t.Errorf("PreAttempt saw %q, want the SET twice", seen)
	}
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Errorf("PreAttempt attempts = %v, want [1 2]", attempts)
	}
}

func TestPoolPreAttemptLatencyEatsCtxBudget(t *testing.T) {
	s := startServer(t)
	p, err := NewPool(s.Addr(), PoolConfig{
		Size:        1,
		MaxAttempts: 1,
		Timeout:     2 * time.Second,
		// A spike longer than the caller's deadline: the attempt must
		// surface DeadlineExceeded instead of succeeding late.
		PreAttempt: func(req string, attempt int) { time.Sleep(80 * time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	if err := p.SetCtx(ctx, "k", "v"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("SetCtx under a spiked attempt = %v, want wrapped DeadlineExceeded", err)
	}
}

// TestPoolAttemptTimeoutClamp covers the defense-in-depth clamp in
// attemptTimeout: even a Pool whose Timeout is zero or negative (direct
// construction, bypassing NewPool's normalization) must derive a finite
// per-attempt budget, and a ctx deadline tighter than the config must
// win and be attributed to the context.
func TestPoolAttemptTimeoutClamp(t *testing.T) {
	bg := context.Background()
	near, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	far, cancel2 := context.WithTimeout(bg, time.Hour)
	defer cancel2()

	cases := []struct {
		name       string
		cfgTimeout time.Duration
		ctx        context.Context
		wantMax    time.Duration
		wantMin    time.Duration
		ctxBounded bool
	}{
		{"zero timeout, no deadline", 0, bg, defaultAttemptTimeout, defaultAttemptTimeout, false},
		{"negative timeout, no deadline", -time.Second, bg, defaultAttemptTimeout, defaultAttemptTimeout, false},
		{"zero timeout, near deadline", 0, near, 50 * time.Millisecond, time.Millisecond, true},
		{"set timeout, far deadline", 300 * time.Millisecond, far, 300 * time.Millisecond, 300 * time.Millisecond, false},
		{"set timeout, near deadline wins", 300 * time.Millisecond, near, 50 * time.Millisecond, time.Millisecond, true},
	}
	for _, tc := range cases {
		p := &Pool{cfg: PoolConfig{Timeout: tc.cfgTimeout}}
		d, ctxBounded := p.attemptTimeout(tc.ctx)
		if d <= 0 || d > tc.wantMax || d < tc.wantMin {
			t.Errorf("%s: attemptTimeout = %v, want in (%v, %v]", tc.name, d, tc.wantMin, tc.wantMax)
		}
		if ctxBounded != tc.ctxBounded {
			t.Errorf("%s: ctxBounded = %v, want %v", tc.name, ctxBounded, tc.ctxBounded)
		}
	}
}

// TestPoolZeroTimeoutCancel: a pool built with a zero Timeout (so the
// clamp supplies the attempt budget) must still honor an explicit
// cancellation promptly instead of riding out the full default window.
func TestPoolZeroTimeoutCancel(t *testing.T) {
	s := startServer(t)
	release := make(chan struct{})
	var once sync.Once
	s.preHandle = func(req string) {
		if strings.HasPrefix(req, "GET slow") {
			<-release
		}
	}
	defer once.Do(func() { close(release) })

	p, err := NewPool(s.Addr(), PoolConfig{Size: 1, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = p.GetCtx(ctx, "slow")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("GetCtx on stalled server = %v, want wrapped context.Canceled", err)
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("cancellation took %v; the zero-Timeout default must not delay ctx cancel", e)
	}
	once.Do(func() { close(release) })
}
