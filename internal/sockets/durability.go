package sockets

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/sockets/wire"
	"repro/internal/wal"
)

// defaultSnapshotEvery is how many logged mutations accumulate before
// the server compacts a snapshot when WALSnapshotEvery is unset.
const defaultSnapshotEvery = 10000

// openWAL wires the write-ahead log into a starting server: recovery
// first (snapshot pairs straight into the shards, dedupe recordings
// preloaded, then the log tail replayed through the same applyBinary
// every live mutation uses), then the log is live and every mutating
// request is appended — and fsynced, via the group committer — before
// its response leaves the server. Runs before the accept loop starts,
// so recovery never races live traffic.
func (s *Server) openWAL(cfg ServerConfig) error {
	workers := cfg.WALReplayWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	l, err := wal.Open(wal.Config{
		Dir:           cfg.WALDir,
		SegmentBytes:  cfg.WALSegmentBytes,
		ReplayWorkers: workers,
		OnSnapshot: func(snap *wal.Snapshot) error {
			for _, kv := range snap.Pairs {
				sh := s.shardFor(kv.Key)
				sh.store[kv.Key] = kv.Value
				// Snapshot pairs bypass applyMutation, so fold them into
				// the anti-entropy digest here; the log tail replays
				// through the live path and tracks itself.
				s.digestApply(kv.Key, "", kv.Value, false, true)
			}
			for _, e := range snap.Dedupe {
				s.dedupe.preload(dedupeKey{client: e.Client, id: e.ID}, e.Resp)
			}
			return nil
		},
		OnRecord: func(rec *wal.Record) error {
			req, err := recordRequest(rec)
			if err != nil {
				return err
			}
			// Replay through the live apply path: the store ends in the
			// exact state the pre-crash sequence produced, and the
			// recomputed response is byte-identical to the one acked
			// (same state sequence, deterministic verbs) — so preloading
			// it keeps retried pre-crash mutations exactly-once.
			resp := s.applyBinary(req)
			if rec.Client != 0 {
				s.dedupe.preload(dedupeKey{client: rec.Client, id: rec.ID},
					wire.AppendResponse(nil, resp))
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	s.wal = l
	s.walEvery = int64(cfg.WALSnapshotEvery)
	if s.walEvery <= 0 {
		s.walEvery = defaultSnapshotEvery
	}
	for i := range s.shards {
		s.recoveredKeys += len(s.shards[i].store)
	}
	return nil
}

// RecoveredKeys reports how many keys WAL recovery restored at startup
// (0 for a cold start or a memory-only server).
func (s *Server) RecoveredKeys() int { return s.recoveredKeys }

// WALStats exposes the group committer's append and fsync counters
// (both zero for a memory-only server).
func (s *Server) WALStats() (appends, syncs int64) {
	if s.wal == nil {
		return 0, 0
	}
	return s.wal.Appends(), s.wal.Syncs()
}

// walWait rides out one reserved append's covering fsync before the
// caller releases its response, then bumps the snapshot trigger. The
// reservation itself (wal.Begin) happens inside applyMutation, under
// the shard lock(s) that ordered the mutation — log order equals apply
// order, which is what makes replay and the snapshot protocol sound
// (state captured after a rotation covers every record enqueued before
// it; see maybeSnapshot). A nil ticket (memory-only server, or nothing
// logged) is a no-op.
func (s *Server) walWait(t *wal.Ticket) error {
	if t == nil {
		return nil
	}
	if err := t.Wait(); err != nil {
		return err
	}
	if s.walSince.Add(1) >= s.walEvery {
		s.maybeSnapshot()
	}
	return nil
}

// maybeSnapshot compacts the log when enough mutations have accumulated
// since the last snapshot. Single-flight: one goroutine rotates,
// captures, and persists while appends continue; a failure just leaves
// compaction to the next trigger.
func (s *Server) maybeSnapshot() {
	if !s.snapInFlight.CompareAndSwap(false, true) {
		return
	}
	s.walSince.Store(0)
	s.walWG.Add(1)
	go func() {
		defer s.walWG.Done()
		defer s.snapInFlight.Store(false)
		// Rotation orders the capture: every record enqueued before this
		// point lands in a sealed pre-tail segment, and — because every
		// mutation is applied to the store, its dedupe recording
		// published, and its record enqueued all under the same shard
		// lock(s) — the capture below sees the effects AND the dedupe
		// recording of every such record. Records that race in after the
		// rotation land at or past tail and replay over the snapshot,
		// which is idempotent (same values, log order).
		tail, err := s.wal.Rotate()
		if err != nil {
			return // closed, crashed, or a latched I/O error: not our problem to report
		}
		snap := &wal.Snapshot{Dedupe: s.dedupe.snapshotEntries()}
		for i := range s.shards {
			sh := &s.shards[i]
			sh.lock.RLock()
			for k, v := range sh.store {
				snap.Pairs = append(snap.Pairs, wal.KV{Key: k, Value: v})
			}
			sh.lock.RUnlock()
		}
		s.wal.WriteSnapshot(tail, snap) //nolint:errcheck // next trigger retries; segments just stay around
	}()
}

// Crash simulates kill -9 for crash-recovery tests and the chaos
// harness: no drain, no connection grace — the listener and every
// connection are cut, queued-but-unsynced log appends fail (their
// clients never got a response, so nothing acked is lost), and the
// active segment is truncated back to its last fsynced byte. The store
// contents die with the process image; only what the WAL promised
// survives into the next Open of the same directory.
func (s *Server) Crash() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.ln.Close()
	s.mu.Lock()
	for cs := range s.active {
		cs.conn.Close()
	}
	s.mu.Unlock()
	if s.wal != nil {
		s.stopScrub()
		// Fails every blocked AppendSync with ErrCrashed, unwinding the
		// handler goroutines conns.Wait joins below.
		if cerr := s.wal.Crash(); err == nil {
			err = cerr
		}
	}
	s.conns.Wait()
	s.walWG.Wait()
	return err
}

// requestRecord maps one applied mutating request onto its log record.
// client is 0 for text-protocol mutations — the text protocol has no
// dedupe identity, so replay restores state but records no response.
func requestRecord(client uint64, r *wire.Request) *wal.Record {
	rec := &wal.Record{Client: client, ID: r.ID, Key: r.Key}
	switch r.Verb {
	case wire.VerbSet:
		rec.Kind = wal.KindSet
		rec.Value = string(r.Value)
	case wire.VerbSetV:
		// An applied SETV logs as a plain set: the version compare already
		// ran (only winners are logged), so replay just restores the bytes
		// — the store ends byte-identical without any version logic in the
		// replay path.
		rec.Kind = wal.KindSet
		rec.Value = string(r.Value)
	case wire.VerbDel:
		rec.Kind = wal.KindDel
	case wire.VerbMDel:
		rec.Kind = wal.KindMDel
		rec.Keys = r.Keys
	case wire.VerbMPut:
		rec.Kind = wal.KindMPut
		rec.Pairs = make([]wal.KV, 0, len(r.Pairs))
		for _, kv := range r.Pairs {
			rec.Pairs = append(rec.Pairs, wal.KV{Key: kv.Key, Value: string(kv.Value)})
		}
	}
	return rec
}

// recordRequest maps a replayed record back onto the request shape
// applyBinary consumes — the inverse of requestRecord.
func recordRequest(rec *wal.Record) (*wire.Request, error) {
	r := &wire.Request{ID: rec.ID, Key: rec.Key}
	switch rec.Kind {
	case wal.KindSet:
		r.Verb = wire.VerbSet
		r.Value = []byte(rec.Value)
	case wal.KindDel:
		r.Verb = wire.VerbDel
	case wal.KindMDel:
		r.Verb = wire.VerbMDel
		r.Keys = rec.Keys
	case wal.KindMPut:
		r.Verb = wire.VerbMPut
		r.Pairs = make([]wire.KV, 0, len(rec.Pairs))
		for _, kv := range rec.Pairs {
			r.Pairs = append(r.Pairs, wire.KV{Key: kv.Key, Value: []byte(kv.Value)})
		}
	default:
		return nil, fmt.Errorf("wal replay: record kind %d has no verb", rec.Kind)
	}
	return r, nil
}

// preload inserts an already-completed recording during WAL recovery,
// so a client retrying a mutation it sent (and we acked) just before
// the crash replays the recorded response instead of applying twice.
func (t *dedupeTable) preload(k dedupeKey, resp []byte) {
	d := t.stripe(k)
	d.mu.Lock()
	if _, ok := d.entries[k]; !ok {
		e := &dedupeEntry{done: make(chan struct{}), resp: resp, doneAt: time.Now()}
		close(e.done)
		d.entries[k] = e
		d.order = append(d.order, k)
	}
	d.mu.Unlock()
}

// snapshotEntries captures the recorded responses still inside the
// retry horizon, for inclusion in a WAL snapshot. Entries with no
// recording yet are skipped — safely: a recording is published (under
// the shard lock) before its WAL record is even enqueued, so any record
// this snapshot's tail covers already has its recording visible here,
// and a skipped entry's mutation either raced in after the rotation
// (its record replays from the log tail, re-deriving the recording) or
// was never applied at all.
func (t *dedupeTable) snapshotEntries() []wal.DedupeEntry {
	now := time.Now()
	var out []wal.DedupeEntry
	for i := range t.stripes {
		d := &t.stripes[i]
		d.mu.Lock()
		for k, e := range d.entries {
			if e.resp != nil && now.Sub(e.doneAt) < t.horizon {
				out = append(out, wal.DedupeEntry{Client: k.client, ID: k.id, Resp: e.resp})
			}
		}
		d.mu.Unlock()
	}
	return out
}
