// End-to-end tests for the binary protocol: negotiation against live
// text clients, pipelined out-of-order completion, retry dedupe by
// correlation ID, batch PDUs, and cancellation — all over real loopback
// sockets (package sockets_test so testutil.StartKV is usable).
package sockets_test

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sockets"
	"repro/internal/sockets/wire"
	"repro/internal/testutil"
)

// binPool opens a binary-protocol pool against s.
func binPool(t *testing.T, s *sockets.Server, cfg sockets.PoolConfig) *sockets.Pool {
	t.Helper()
	cfg.Proto = sockets.ProtoBinary
	p, err := sockets.NewPool(s.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// rawBinaryConn dials the server and performs the binary handshake by
// hand, for driving deliberate PDUs (dedupe probes, malformed frames).
func rawBinaryConn(t *testing.T, addr string, clientID uint64) net.Conn {
	t.Helper()
	conn := rawConn(t, addr)
	hs := make([]byte, 9)
	hs[0] = wire.Magic
	binary.BigEndian.PutUint64(hs[1:], clientID)
	if _, err := conn.Write(hs); err != nil {
		t.Fatal(err)
	}
	return conn
}

func sendPDU(t *testing.T, conn net.Conn, r *wire.Request) *wire.Response {
	t.Helper()
	if err := sockets.WriteFrame(conn, wire.AppendRequest(nil, r)); err != nil {
		t.Fatalf("write PDU: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	payload, err := sockets.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read PDU response: %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp
}

// TestBinaryNegotiationSharedStore: a text Client and a binary Pool on
// the same server read each other's writes — the negotiation byte
// selects a protocol, not a store.
func TestBinaryNegotiationSharedStore(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	c, err := sockets.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := binPool(t, s, sockets.PoolConfig{})

	if err := c.Set("from-text", "t"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("from-binary", "b"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := p.Get("from-text"); err != nil || !ok || v != "t" {
		t.Fatalf("binary read of text write = %q %v %v", v, ok, err)
	}
	if v, ok, err := c.Get("from-binary"); err != nil || !ok || v != "b" {
		t.Fatalf("text read of binary write = %q %v %v", v, ok, err)
	}
	keys, err := p.Keys()
	if err != nil || len(keys) != 2 {
		t.Fatalf("binary KEYS = %v %v, want both protocols' keys", keys, err)
	}
	if n, err := c.Count(); err != nil || n != 2 {
		t.Fatalf("text COUNT = %d %v", n, err)
	}
}

// TestBinaryPipeliningOutOfOrder: one stalled op must not convoy the
// pipeline — later requests on the same shared connection complete
// while it is still in flight, and the stalled response arrives last,
// correctly matched by correlation ID.
func TestBinaryPipeliningOutOfOrder(t *testing.T) {
	const stall = 300 * time.Millisecond
	s := testutil.StartKV(t, sockets.ServerConfig{
		PreHandle: func(req string) {
			if strings.HasPrefix(req, "GET slow") {
				time.Sleep(stall)
			}
		},
	})
	p := binPool(t, s, sockets.PoolConfig{Timeout: 5 * time.Second})
	if err := p.Set("slow", "s"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("fast", "f"); err != nil {
		t.Fatal(err)
	}

	var slowDone, fastDone atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, ok, err := p.Get("slow"); err != nil || !ok || v != "s" {
			t.Errorf("slow GET = %q %v %v", v, ok, err)
		}
		slowDone.Store(time.Now().UnixNano())
	}()
	time.Sleep(20 * time.Millisecond) // let the slow GET hit the wire first
	start := time.Now()
	for i := 0; i < 16; i++ {
		if v, ok, err := p.Get("fast"); err != nil || !ok || v != "f" {
			t.Fatalf("fast GET = %q %v %v", v, ok, err)
		}
	}
	fastElapsed := time.Since(start)
	fastDone.Store(time.Now().UnixNano())
	wg.Wait()

	if fastElapsed > stall {
		t.Errorf("16 fast GETs took %v behind a %v stall: pipeline convoyed", fastElapsed, stall)
	}
	if slowDone.Load() < fastDone.Load() {
		t.Errorf("slow GET finished before the fast batch: stall hook did not engage")
	}
}

// TestBinaryDedupeRetriedID: re-sending a mutation under an
// already-answered correlation ID — what the Pool does when a response
// is lost in transit — must replay the recorded response, not apply a
// second time. The probe sends a DIFFERENT op under the same ID so an
// accidental re-apply is visible in the store.
func TestBinaryDedupeRetriedID(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	conn := rawBinaryConn(t, s.Addr(), 71)

	set := &wire.Request{Verb: wire.VerbSet, ID: 7, Key: "k", Value: []byte("v1")}
	if resp := sendPDU(t, conn, set); resp.Tag != wire.RespOK {
		t.Fatalf("first SET: tag 0x%02x", resp.Tag)
	}
	// "Retry" the same ID, but as a DEL: a deduping server answers from
	// the recording (RespOK from the SET) and leaves the store alone.
	del := &wire.Request{Verb: wire.VerbDel, ID: 7, Key: "k"}
	if resp := sendPDU(t, conn, del); resp.Tag != wire.RespOK {
		t.Fatalf("replayed ID: tag 0x%02x", resp.Tag)
	}
	if resp := sendPDU(t, conn, &wire.Request{Verb: wire.VerbGet, ID: 8, Key: "k"}); resp.Tag != wire.RespValue || string(resp.Value) != "v1" {
		t.Fatalf("key mutated by deduped retry: tag 0x%02x value %q", resp.Tag, resp.Value)
	}
	if got := s.DedupeHits(); got != 1 {
		t.Errorf("DedupeHits = %d, want 1", got)
	}

	// A different client reusing the same correlation ID is NOT a
	// retry: dedupe keys on (client ID, correlation ID).
	other := rawBinaryConn(t, s.Addr(), 72)
	if resp := sendPDU(t, other, &wire.Request{Verb: wire.VerbDel, ID: 7, Key: "k"}); resp.Tag != wire.RespOK {
		t.Fatalf("other client's DEL: tag 0x%02x", resp.Tag)
	}
	if resp := sendPDU(t, conn, &wire.Request{Verb: wire.VerbGet, ID: 9, Key: "k"}); resp.Tag != wire.RespNotFound {
		t.Fatalf("other client's DEL did not apply: tag 0x%02x", resp.Tag)
	}
}

// TestBinaryPoolRetryAfterConnKill: the FailConn fault hook kills the
// shared connection mid-request; the retry must redial, re-send under
// the same correlation ID, and succeed — the chaos harness's connection
// drops keep working on the pipelined transport.
func TestBinaryPoolRetryAfterConnKill(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	var kills atomic.Int64
	p := binPool(t, s, sockets.PoolConfig{
		MaxAttempts: 3,
		Timeout:     2 * time.Second,
		FailConn: func(req, attempt int) bool {
			if attempt == 1 && kills.Add(1) == 1 {
				return true
			}
			return false
		},
	})
	if err := p.Set("k", "v"); err != nil {
		t.Fatalf("SET through injected kill: %v", err)
	}
	if v, ok, err := p.Get("k"); err != nil || !ok || v != "v" {
		t.Fatalf("GET after recovery = %q %v %v", v, ok, err)
	}
	cs := p.Counters()
	if retries, _ := cs.Get("pool.retries"); retries < 1 {
		t.Errorf("pool.retries = %v, want >= 1", retries)
	}
	if inj, _ := cs.Get("pool.failconn-injections"); inj != 1 {
		t.Errorf("pool.failconn-injections = %v, want 1", inj)
	}
}

// TestBinaryBatchOps: MGET/MPUT/MDEL round-trip as single PDUs, and the
// text fallback produces identical results.
func TestBinaryBatchOps(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	bp := binPool(t, s, sockets.PoolConfig{})
	tp, err := sockets.NewPool(s.Addr(), sockets.PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	pairs := []sockets.KV{{Key: "a", Value: "1"}, {Key: "b", Value: "2 with spaces"}, {Key: "c", Value: "3"}}
	if err := bp.MPut(pairs); err != nil {
		t.Fatal(err)
	}
	reqsBefore := s.Stats().Requests
	values, found, err := bp.MGet("a", "b", "missing", "c")
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Requests != reqsBefore+1 {
		t.Errorf("MGET of 4 keys cost %d requests, want 1 PDU", s.Stats().Requests-reqsBefore)
	}
	wantV := []string{"1", "2 with spaces", "", "3"}
	wantF := []bool{true, true, false, true}
	for i := range wantV {
		if values[i] != wantV[i] || found[i] != wantF[i] {
			t.Errorf("MGET[%d] = %q/%v, want %q/%v", i, values[i], found[i], wantV[i], wantF[i])
		}
	}
	tv, tf, err := tp.MGet("a", "b", "missing", "c")
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantV {
		if tv[i] != wantV[i] || tf[i] != wantF[i] {
			t.Errorf("text MGet[%d] = %q/%v, want %q/%v", i, tv[i], tf[i], wantV[i], wantF[i])
		}
	}
	if n, err := bp.MDel("a", "b", "missing", "c"); err != nil || n != 3 {
		t.Fatalf("MDel = %d %v, want 3", n, err)
	}
	if n, err := bp.Count(); err != nil || n != 0 {
		t.Fatalf("Count after MDel = %d %v", n, err)
	}
}

// TestBinaryKeyRulesShared: keys keep the text protocol's rules on the
// binary path — client-side ErrBadKey before the wire, and server-side
// rejection for a hand-rolled PDU — because the store is shared and
// keys surface in text KEYS responses.
func TestBinaryKeyRulesShared(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	p := binPool(t, s, sockets.PoolConfig{})
	if err := p.Set("bad key", "v"); !errors.Is(err, sockets.ErrBadKey) {
		t.Fatalf("binary SET with spacey key: %v, want ErrBadKey", err)
	}
	conn := rawBinaryConn(t, s.Addr(), 99)
	resp := sendPDU(t, conn, &wire.Request{Verb: wire.VerbSet, ID: 1, Key: "bad key", Value: []byte("v")})
	if resp.Tag != wire.RespErr {
		t.Fatalf("server accepted spacey key over raw binary: tag 0x%02x", resp.Tag)
	}
}

// TestBinaryMalformedPDUSurvives: frame boundaries hold even when a
// payload is garbage — the server answers RespErr and keeps serving the
// connection, mirroring the text path's ERR-and-continue.
func TestBinaryMalformedPDUSurvives(t *testing.T) {
	s := testutil.StartKV(t, sockets.ServerConfig{})
	conn := rawBinaryConn(t, s.Addr(), 5)
	if err := sockets.WriteFrame(conn, []byte{0x7E, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	payload, err := sockets.ReadFrame(conn)
	if err != nil {
		t.Fatalf("no response to malformed PDU: %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil || resp.Tag != wire.RespErr {
		t.Fatalf("malformed PDU answered with %v / %+v, want RespErr", err, resp)
	}
	if got := sendPDU(t, conn, &wire.Request{Verb: wire.VerbPing, ID: 2}); got.Tag != wire.RespOK {
		t.Fatalf("connection dead after malformed PDU: tag 0x%02x", got.Tag)
	}
}

// TestBinaryPoolCancelMidRequest: a canceled context unblocks a
// pipelined request immediately (wrapped context.Canceled), without
// killing the shared connection for everyone else, and leaks no
// goroutines.
func TestBinaryPoolCancelMidRequest(t *testing.T) {
	base := testutil.SettleGoroutines()
	s := testutil.StartKV(t, sockets.ServerConfig{
		PreHandle: func(req string) {
			if strings.HasPrefix(req, "GET stuck") {
				time.Sleep(400 * time.Millisecond)
			}
		},
	})
	p := binPool(t, s, sockets.PoolConfig{Timeout: 5 * time.Second})
	if err := p.Set("stuck", "s"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, _, err := p.GetCtx(ctx, "stuck")
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled GET = %v, want wrapped context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
			t.Errorf("cancellation took %v, want immediate", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled GET never returned")
	}
	// The shared connection survived the abandoned request.
	if v, ok, err := p.Get("other"); err != nil || ok || v != "" {
		t.Fatalf("pool unusable after cancellation: %q %v %v", v, ok, err)
	}
	p.Close()
	s.Close()
	testutil.CheckNoGoroutineLeak(t, base, 3)
}
