#!/bin/sh
# lint-blocking.sh — fail the build when an uncancelable blocking call
# sneaks back into the network layers.
#
# The context refactor holds only as long as every wait in
# internal/sockets and internal/cluster can be interrupted: a bare
# time.Sleep ignores cancellation entirely (the retry-backoff bug this
# repo already fixed once), and a bare net.DialTimeout blocks through a
# dead ctx. Both have sanctioned replacements in this tree:
#
#   time.Sleep       -> a time.Timer raced against ctx.Done()
#   net.DialTimeout  -> dialCtx (internal/sockets/dial.go), which feeds
#                       net.Dialer.DialContext
#
# Test files are exempt (tests sleep to arrange timing on purpose), and
# dial.go is the one allowlisted home for the dialer.

set -eu
cd "$(dirname "$0")/.."

status=0
for pkg in internal/sockets internal/cluster; do
    for f in "$pkg"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        internal/sockets/dial.go) continue ;;
        esac
        # Strip line comments before matching so prose about the banned
        # calls (like the comments in dial.go's callers) doesn't trip it.
        hits=$(sed 's|//.*||' "$f" | grep -nE 'time\.Sleep\(|net\.DialTimeout\(' || true)
        if [ -n "$hits" ]; then
            echo "lint-blocking: $f uses an uncancelable blocking call:" >&2
            echo "$hits" | sed 's/^/    /' >&2
            status=1
        fi
    done
done

if [ "$status" -ne 0 ]; then
    echo "lint-blocking: race the wait against ctx.Done() (or dial via internal/sockets/dial.go)" >&2
fi

# Durability discipline: fsync is internal/wal's job. A bare .Sync()
# anywhere else is either a redundant flush on the WAL's critical path
# (defeating group commit — every caller pays its own disk stall) or an
# ad-hoc durability promise the recovery path knows nothing about. Route
# durable writes through wal.Log.AppendSync / wal.WriteSnapshot instead.
sync_status=0
for f in $(find cmd internal scripts -name '*.go' ! -name '*_test.go' 2>/dev/null); do
    case "$f" in
    internal/wal/*) continue ;;
    esac
    hits=$(sed 's|//.*||' "$f" | grep -nE '\.Sync\(\)' || true)
    if [ -n "$hits" ]; then
        echo "lint-blocking: $f calls .Sync() outside internal/wal:" >&2
        echo "$hits" | sed 's/^/    /' >&2
        sync_status=1
    fi
done
if [ "$sync_status" -ne 0 ]; then
    echo "lint-blocking: fsync belongs to internal/wal (AppendSync / WriteSnapshot)" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "lint-blocking: ok"
fi
exit "$status"
