#!/usr/bin/env bash
# scripts/perf/run.sh — the committed benchmark grid.
#
# Runs clusterbench -workload over the full cell grid
# (uniform/zipfian x text/binary x cache on/off, closed loop) plus the
# overload trio (capacity probe, then 2x-capacity open loop with and
# without admission control), the durability pair (WAL group-commit
# microbench and the durable-cluster capacity cell), the anti-entropy
# convergence cell (a restarted-empty replica rebuilt by Merkle sync
# alone), N repeats per cell with varying seeds, and aggregates the raw
# JSON lines into bench/BENCH_<date>.json with mean/stddev per cell.
# scripts/perf/compare diffs two BENCH files and fails on regressions.
#
# Usage:
#   ./scripts/perf/run.sh            # full grid -> bench/BENCH_<date>.json
#   ./scripts/perf/run.sh -quick     # 1 repeat, short windows, temp output (CI smoke)
set -euo pipefail

cd "$(dirname "$0")/../.."

REPEATS=3
DURATION=2s
OVER_DURATION=3s
WAL_DURATION=2s
QUICK=0
if [[ "${1:-}" == "-quick" ]]; then
    QUICK=1
    REPEATS=1
    DURATION=800ms
    OVER_DURATION=800ms
    WAL_DURATION=500ms
fi

# Fewer, bigger GC cycles: on a small shared host the default GOGC makes
# the collector the dominant noise source across repeats.
export GOGC="${GOGC:-400}"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
BIN="$TMP/clusterbench"
AGG="$TMP/aggregate"
RAW="$TMP/raw.jsonl"

echo "== building =="
go build -o "$BIN" ./cmd/clusterbench
go build -o "$AGG" ./scripts/perf/aggregate

# bench <args...> — one clusterbench invocation per repeat, seeds varied.
bench() {
    for rep in $(seq 1 "$REPEATS"); do
        "$BIN" -seed $((42 + rep * 1000)) -json "$RAW" -duration "$DURATION" "$@"
        echo
    done
}

echo "== grid: dist x proto x cache (closed loop, 64B values) =="
for dist in uniform zipfian; do
    for proto in text binary; do
        for cache in false true; do
            echo "-- cell: $dist-$proto-cache=$cache --"
            bench -workload "$dist" -proto "$proto" -cache="$cache" \
                -wkeys 512 -workers 16 -valuesize 64
        done
    done
done

echo "== overload quartet (zipfian, binary, 4KB values) =="
# Two capacity probes, because admission control changes the serving
# path: MaxPending forces the binary server onto goroutine dispatch
# (the handler goroutine set is the bounded queue), while MaxPending 0
# serves single-key verbs inline in the read loop. The goodput floor is
# judged against the async-path probe — the capacity of the
# configuration actually being protected; the inline probe is kept as
# the unprotected fast path's reference number.
CAP_INLINE="capacity-inline-closed-4k"
CAP_ASYNC="capacity-async-closed-4k"
for rep in $(seq 1 "$REPEATS"); do
    "$BIN" -seed $((42 + rep * 1000)) -json "$RAW" -duration "$OVER_DURATION" \
        -workload zipfian -proto binary -wkeys 128 -valuesize 4096 -workers 32 \
        -label "$CAP_INLINE"
    echo
    "$BIN" -seed $((42 + rep * 1000)) -json "$RAW" -duration "$OVER_DURATION" \
        -workload zipfian -proto binary -wkeys 128 -valuesize 4096 -workers 32 \
        -maxpending 1024 -label "$CAP_ASYNC"
    echo
done
CAPACITY=$("$AGG" -in "$RAW" -capacity "$CAP_ASYNC")
OFFERED=$((CAPACITY * 2))
echo "async-path capacity ~= $CAPACITY ops/s -> offering $OFFERED qps"

# The same 2x-capacity open-loop storm, unprotected vs admission-controlled.
for rep in $(seq 1 "$REPEATS"); do
    "$BIN" -seed $((42 + rep * 1000)) -json "$RAW" -duration "$OVER_DURATION" \
        -workload zipfian -proto binary -wkeys 128 -valuesize 4096 \
        -workers 128 -qps "$OFFERED" -label "overload-open-2x"
    echo
    "$BIN" -seed $((42 + rep * 1000)) -json "$RAW" -duration "$OVER_DURATION" \
        -workload zipfian -proto binary -wkeys 128 -valuesize 4096 \
        -workers 128 -qps "$OFFERED" -maxpending 64 -label "overload-open-2x-shed"
    echo
done

echo "== durability: wal group commit + durable capacity =="
# The group-commit microbench isolates the fsync batching win from the
# cluster stack: the same 64 concurrent writers, first paying one fsync
# per record (serialized), then batched by the commit loop. Both land as
# labeled cells; EXPERIMENTS E16 requires >=5x at 64 writers.
for rep in $(seq 1 "$REPEATS"); do
    "$BIN" -walbench -walwriters 64 -waldur "$WAL_DURATION" -json "$RAW"
    echo
done
# The durable capacity cell is the honest overhead number: the async
# capacity probe rerun with every write fsynced (group-committed) before
# its ack, judged against CAP_ASYNC above.
for rep in $(seq 1 "$REPEATS"); do
    "$BIN" -seed $((42 + rep * 1000)) -json "$RAW" -duration "$OVER_DURATION" \
        -workload zipfian -proto binary -wkeys 128 -valuesize 4096 -workers 32 \
        -maxpending 1024 -durable -label "capacity-durable-closed-4k"
    echo
done

echo "== anti-entropy convergence (divergence = a replica restarted empty) =="
# Hints disabled, so Merkle sync is the only path that rebuilds the
# node: the cell records how long SyncNow takes to reach a quiet pass
# over 10k diverged keys, and the run itself asserts the repair volume
# equals the divergence exactly.
AE_KEYS=10000
if [[ "$QUICK" == 1 ]]; then
    AE_KEYS=1000
fi
for rep in $(seq 1 "$REPEATS"); do
    "$BIN" -antientropy -aekeys "$AE_KEYS" -seed $((42 + rep * 1000)) -json "$RAW"
    echo
done

echo "== recovery: parallel replay + WAL-streaming re-replication =="
# Two ratio cells hold the recovery story: recovery-replay-1m records
# the parallel-over-serial replay speedup on a 1M-record log (pure
# replay, no snapshot — the worst case), and rereplicate-stream-vs-keys
# records how much faster a wiped disk rebuilds via SYNCWAL streaming
# than via key-by-key Merkle span repair. The bench itself enforces the
# EXPERIMENTS E18 floors (>=3x replay on a multi-core host, >=2x
# streaming) on full runs; -quick only smoke-tests the paths.
RECOVERY_FLAGS=()
if [[ "$QUICK" == 1 ]]; then
    RECOVERY_FLAGS=(-quick)
fi
for rep in $(seq 1 "$REPEATS"); do
    "$BIN" -recoverybench "${RECOVERY_FLAGS[@]}" -seed $((42 + rep * 1000)) -json "$RAW"
    echo
done

echo "== aggregate =="
DATE=$(date +%F)
if [[ "$QUICK" == 1 ]]; then
    OUT="$TMP/BENCH_$DATE.json"
else
    mkdir -p bench
    OUT="bench/BENCH_$DATE.json"
fi
"$AGG" -in "$RAW" -out "$OUT" -date "$DATE" \
    -note "3-node cluster, replicas=3, W=2 R=2, single host, GOGC=$GOGC; async-path capacity probe $CAPACITY ops/s, overload cells offered ${OFFERED} qps"
echo "wrote $OUT"
