// Command aggregate folds the raw JSON lines clusterbench -workload
// -json emits into the committed BENCH_<date>.json: runs grouped by
// cell, each cell reduced to mean/stddev over its repeats.
//
// Usage:
//
//	aggregate -in raw.jsonl -out bench/BENCH_2026-08-07.json -date 2026-08-07
//	aggregate -in raw.jsonl -capacity zipfian-binary-nocache-closed
//	aggregate -in raw.jsonl -base bench/BENCH_old.json -out bench/BENCH_new.json
//
// The -capacity mode prints the cell's mean goodput as a bare integer —
// run.sh uses it to compute the 2x offered rate for the overload cells.
// -base merges this run's cells into an existing BENCH file (replacing
// re-measured cells, keeping the rest), so one new cell can be added
// without rerunning the whole grid.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

// rawRun mirrors clusterbench's workloadResult JSON line.
type rawRun struct {
	Label      string  `json:"label"`
	Dist       string  `json:"dist"`
	Proto      string  `json:"proto"`
	Cache      bool    `json:"cache"`
	Durable    bool    `json:"durable"`
	Mode       string  `json:"mode"`
	OfferedQPS float64 `json:"offered_qps"`
	Theta      float64 `json:"theta"`
	Keys       int     `json:"keys"`
	Workers    int     `json:"workers"`
	ReadFrac   float64 `json:"read_frac"`
	ValueSize  int     `json:"value_size"`
	MaxPending int     `json:"max_pending"`
	Seed       int64   `json:"seed"`
	DurationS  float64 `json:"duration_s"`

	Ops            int64   `json:"ops"`
	Errors         int64   `json:"errors"`
	Overloads      int64   `json:"overloads"`
	Throughput     float64 `json:"throughput_ops_s"`
	Goodput        float64 `json:"goodput_ops_s"`
	ReadP50Ms      float64 `json:"read_p50_ms"`
	ReadP99Ms      float64 `json:"read_p99_ms"`
	ReadP999Ms     float64 `json:"read_p999_ms"`
	WriteP50Ms     float64 `json:"write_p50_ms"`
	WriteP99Ms     float64 `json:"write_p99_ms"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	Syncs          int64   `json:"syncs"`
	AppendsPerSync float64 `json:"appends_per_sync"`
	Sheds          int64   `json:"sheds"`
	LagMeanMs      float64 `json:"lag_mean_ms"`
	LagMaxMs       float64 `json:"lag_max_ms"`

	// Anti-entropy convergence cells (clusterbench -antientropy).
	ConvergeMs   float64 `json:"converge_ms"`
	SyncRounds   int64   `json:"sync_rounds"`
	KeysRepaired int64   `json:"keys_repaired"`
	RepairBytes  int64   `json:"repair_bytes"`
}

func (r rawRun) cell() string {
	if r.Label != "" {
		return r.Label
	}
	cache := "nocache"
	if r.Cache {
		cache = "cache"
	}
	return fmt.Sprintf("%s-%s-%s-%s", r.Dist, r.Proto, cache, r.Mode)
}

// stat is one metric reduced over a cell's repeats.
type stat struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
}

func reduce(vals []float64) stat {
	var s stat
	n := float64(len(vals))
	if n == 0 {
		return s
	}
	for _, v := range vals {
		s.Mean += v
	}
	s.Mean /= n
	if n > 1 {
		var sq float64
		for _, v := range vals {
			d := v - s.Mean
			sq += d * d
		}
		s.Stddev = math.Sqrt(sq / (n - 1))
	}
	return s
}

// cellSummary is one aggregated grid cell in the committed file.
type cellSummary struct {
	Cell       string  `json:"cell"`
	Runs       int     `json:"runs"`
	Dist       string  `json:"dist"`
	Proto      string  `json:"proto"`
	Cache      bool    `json:"cache"`
	Durable    bool    `json:"durable,omitempty"`
	Mode       string  `json:"mode"`
	OfferedQPS float64 `json:"offered_qps,omitempty"`
	Theta      float64 `json:"theta"`
	Keys       int     `json:"keys"`
	Workers    int     `json:"workers"`
	ReadFrac   float64 `json:"read_frac"`
	ValueSize  int     `json:"value_size"`
	MaxPending int     `json:"max_pending"`

	Throughput   stat    `json:"throughput_ops_s"`
	Goodput      stat    `json:"goodput_ops_s"`
	ReadP50Ms    stat    `json:"read_p50_ms"`
	ReadP99Ms    stat    `json:"read_p99_ms"`
	ReadP999Ms   stat    `json:"read_p999_ms"`
	WriteP50Ms   stat    `json:"write_p50_ms"`
	WriteP99Ms   stat    `json:"write_p99_ms"`
	LagMeanMs    stat    `json:"lag_mean_ms"`
	ErrorsMean   float64 `json:"errors_mean"`
	OverloadMean float64 `json:"overloads_mean"`
	ShedsMean    float64 `json:"sheds_mean"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// WAL microbench cells only: fsync batching factor (0 elsewhere).
	AppendsPerSync stat `json:"appends_per_sync,omitempty"`
	// Anti-entropy convergence cells only (0 elsewhere): time for Merkle
	// sync to rebuild the injected divergence, and the repair volume.
	ConvergeMs       stat    `json:"converge_ms,omitempty"`
	SyncRoundsMean   float64 `json:"sync_rounds_mean,omitempty"`
	KeysRepairedMean float64 `json:"keys_repaired_mean,omitempty"`
	RepairBytesMean  float64 `json:"repair_bytes_mean,omitempty"`
}

type benchFile struct {
	Date  string        `json:"date"`
	Note  string        `json:"note"`
	Cells []cellSummary `json:"cells"`
}

func main() {
	in := flag.String("in", "", "raw JSON-lines file from clusterbench -workload -json")
	out := flag.String("out", "", "aggregated BENCH json to write")
	date := flag.String("date", "", "date stamp recorded in the output")
	note := flag.String("note", "", "free-form note recorded in the output")
	capacity := flag.String("capacity", "", "print the mean goodput of this cell as an integer and exit")
	base := flag.String("base", "", "existing BENCH json to merge into: its cells are kept unless this run re-measures them (for adding one cell without rerunning the grid)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "aggregate: -in required")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggregate:", err)
		os.Exit(1)
	}
	defer f.Close()

	groups := map[string][]rawRun{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r rawRun
		if err := json.Unmarshal(line, &r); err != nil {
			fmt.Fprintf(os.Stderr, "aggregate: skipping bad line: %v\n", err)
			continue
		}
		c := r.cell()
		if _, ok := groups[c]; !ok {
			order = append(order, c)
		}
		groups[c] = append(groups[c], r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "aggregate:", err)
		os.Exit(1)
	}

	if *capacity != "" {
		runs, ok := groups[*capacity]
		if !ok {
			fmt.Fprintf(os.Stderr, "aggregate: no runs for cell %q (have %v)\n", *capacity, order)
			os.Exit(1)
		}
		var goodputs []float64
		for _, r := range runs {
			goodputs = append(goodputs, r.Goodput)
		}
		fmt.Printf("%d\n", int(reduce(goodputs).Mean))
		return
	}

	bf := benchFile{Date: *date, Note: *note}
	for _, c := range order {
		runs := groups[c]
		pick := func(get func(rawRun) float64) stat {
			vals := make([]float64, len(runs))
			for i, r := range runs {
				vals[i] = get(r)
			}
			return reduce(vals)
		}
		first := runs[0]
		cs := cellSummary{
			Cell: c, Runs: len(runs),
			Dist: first.Dist, Proto: first.Proto, Cache: first.Cache, Durable: first.Durable, Mode: first.Mode,
			OfferedQPS: first.OfferedQPS, Theta: first.Theta, Keys: first.Keys,
			Workers: first.Workers, ReadFrac: first.ReadFrac, ValueSize: first.ValueSize,
			MaxPending: first.MaxPending,

			Throughput: pick(func(r rawRun) float64 { return r.Throughput }),
			Goodput:    pick(func(r rawRun) float64 { return r.Goodput }),
			ReadP50Ms:  pick(func(r rawRun) float64 { return r.ReadP50Ms }),
			ReadP99Ms:  pick(func(r rawRun) float64 { return r.ReadP99Ms }),
			ReadP999Ms: pick(func(r rawRun) float64 { return r.ReadP999Ms }),
			WriteP50Ms: pick(func(r rawRun) float64 { return r.WriteP50Ms }),
			WriteP99Ms: pick(func(r rawRun) float64 { return r.WriteP99Ms }),
			LagMeanMs:  pick(func(r rawRun) float64 { return r.LagMeanMs }),

			AppendsPerSync: pick(func(r rawRun) float64 { return r.AppendsPerSync }),
			ConvergeMs:     pick(func(r rawRun) float64 { return r.ConvergeMs }),
		}
		var hits, lookups int64
		for _, r := range runs {
			cs.ErrorsMean += float64(r.Errors)
			cs.OverloadMean += float64(r.Overloads)
			cs.ShedsMean += float64(r.Sheds)
			cs.SyncRoundsMean += float64(r.SyncRounds)
			cs.KeysRepairedMean += float64(r.KeysRepaired)
			cs.RepairBytesMean += float64(r.RepairBytes)
			hits += r.CacheHits
			lookups += r.CacheHits + r.CacheMisses
		}
		cs.ErrorsMean /= float64(len(runs))
		cs.OverloadMean /= float64(len(runs))
		cs.ShedsMean /= float64(len(runs))
		cs.SyncRoundsMean /= float64(len(runs))
		cs.KeysRepairedMean /= float64(len(runs))
		cs.RepairBytesMean /= float64(len(runs))
		if lookups > 0 {
			cs.CacheHitRate = float64(hits) / float64(lookups)
		}
		bf.Cells = append(bf.Cells, cs)
	}
	if *base != "" {
		raw, err := os.ReadFile(*base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aggregate:", err)
			os.Exit(1)
		}
		var prev benchFile
		if err := json.Unmarshal(raw, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "aggregate: bad base %s: %v\n", *base, err)
			os.Exit(1)
		}
		remeasured := map[string]bool{}
		for _, cs := range bf.Cells {
			remeasured[cs.Cell] = true
		}
		var merged []cellSummary
		for _, cs := range prev.Cells {
			if !remeasured[cs.Cell] {
				merged = append(merged, cs)
			}
		}
		bf.Cells = append(merged, bf.Cells...)
		if bf.Date == "" {
			bf.Date = prev.Date
		}
		if bf.Note == "" {
			bf.Note = prev.Note
		}
	}
	sort.SliceStable(bf.Cells, func(i, j int) bool { return bf.Cells[i].Cell < bf.Cells[j].Cell })

	enc, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggregate:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "aggregate:", err)
		os.Exit(1)
	}
	fmt.Printf("aggregate: %d cells -> %s\n", len(bf.Cells), *out)
}
