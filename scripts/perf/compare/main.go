// Command compare holds the line on the committed benchmark baseline:
// it diffs a freshly measured BENCH json against the last committed one
// and exits nonzero when any shared cell regressed past the threshold.
//
// Usage:
//
//	compare -old bench/BENCH_2026-08-07.json -new /tmp/BENCH_new.json
//	compare -old ... -new ... -threshold 0.15 -cells 'antientropy.*'
//
// Per shared cell it checks goodput (higher is better; throughput when
// the cell records no goodput) and, for anti-entropy cells, converge_ms
// (lower is better). A cell only fails when the regression exceeds BOTH
// the threshold fraction and twice the larger of the two recorded
// stddevs — a single noisy repeat must not block CI, a real slide must.
// Cells present on only one side are reported and skipped: the
// comparison gates regressions, not coverage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
)

type stat struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
}

// cell is the slice of the BENCH schema the comparison reads; unknown
// fields in the committed file are ignored, so the two tools can grow
// independently.
type cell struct {
	Cell       string `json:"cell"`
	Runs       int    `json:"runs"`
	Throughput stat   `json:"throughput_ops_s"`
	Goodput    stat   `json:"goodput_ops_s"`
	ConvergeMs stat   `json:"converge_ms"`
}

type benchFile struct {
	Date  string `json:"date"`
	Cells []cell `json:"cells"`
}

func load(path string) (benchFile, error) {
	var bf benchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(raw, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	return bf, nil
}

// check evaluates one metric of one cell. higherBetter flips the sign;
// the verdict string is empty when the cell holds the line.
func check(name, cellName string, old, nw stat, higherBetter bool, threshold float64) string {
	if old.Mean == 0 || nw.Mean == 0 {
		return "" // metric not recorded on one side: nothing to hold
	}
	delta := (nw.Mean - old.Mean) / old.Mean
	worse := delta
	if higherBetter {
		worse = -delta
	}
	noise := 2 * old.Stddev
	if 2*nw.Stddev > noise {
		noise = 2 * nw.Stddev
	}
	gap := nw.Mean - old.Mean
	if gap < 0 {
		gap = -gap
	}
	verdict := "ok"
	failed := ""
	if worse > threshold && gap > noise {
		verdict = "REGRESSION"
		failed = fmt.Sprintf("%s %s: %.1f -> %.1f (%+.1f%%, threshold %.0f%%)",
			cellName, name, old.Mean, nw.Mean, 100*delta, 100*threshold)
	}
	fmt.Printf("  %-32s %-14s %12.1f -> %12.1f  %+6.1f%%  %s\n",
		cellName, name, old.Mean, nw.Mean, 100*delta, verdict)
	return failed
}

func main() {
	oldPath := flag.String("old", "", "committed baseline BENCH json")
	newPath := flag.String("new", "", "freshly measured BENCH json")
	threshold := flag.Float64("threshold", 0.15, "regression fraction that fails the comparison")
	cellsRe := flag.String("cells", "", "only compare cells matching this regexp (default: all shared cells)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "compare: -old and -new required")
		os.Exit(2)
	}
	filter := regexp.MustCompile(".*")
	if *cellsRe != "" {
		re, err := regexp.Compile(*cellsRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(2)
		}
		filter = re
	}

	oldBF, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	newBF, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}

	oldCells := map[string]cell{}
	for _, c := range oldBF.Cells {
		oldCells[c.Cell] = c
	}
	fmt.Printf("comparing %s (%s) -> %s (%s), threshold %.0f%%\n",
		*oldPath, oldBF.Date, *newPath, newBF.Date, 100**threshold)

	var failures []string
	compared := 0
	for _, nw := range newBF.Cells {
		if !filter.MatchString(nw.Cell) {
			continue
		}
		old, ok := oldCells[nw.Cell]
		if !ok {
			fmt.Printf("  %-32s new cell, no baseline — skipped\n", nw.Cell)
			continue
		}
		compared++
		if f := check("goodput_ops_s", nw.Cell, pickRate(old), pickRate(nw), true, *threshold); f != "" {
			failures = append(failures, f)
		}
		if f := check("converge_ms", nw.Cell, old.ConvergeMs, nw.ConvergeMs, false, *threshold); f != "" {
			failures = append(failures, f)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "compare: no shared cells matched — the baseline gate compared nothing")
		os.Exit(1)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\ncompare: %d regression(s) past the %.0f%% threshold:\n", len(failures), 100**threshold)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("%d cells compared, no regressions past the threshold\n", compared)
}

// pickRate is the cell's rate metric: goodput when recorded, otherwise
// throughput (closed-loop cells without shedding record them equal;
// WAL and convergence cells record neither and are skipped by check).
func pickRate(c cell) stat {
	if c.Goodput.Mean > 0 {
		return c.Goodput
	}
	return c.Throughput
}
