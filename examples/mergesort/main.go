// Merge sort across three models of computation — the CS41 unifying
// example (Section III.A and Table III): the same algorithm analyzed in
// the RAM model (comparisons), the parallel model (work and span from the
// fork-join DAG, plus measured goroutine runs), and the I/O model (block
// transfers of the external-memory variant). Run with:
//
//	go run ./examples/mergesort
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/iomodel"
	"repro/internal/psort"
)

func main() {
	const n = 1 << 17
	xs := make([]int64, n)
	s := uint64(1)
	for i := range xs {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		xs[i] = int64(s % 1000000)
	}

	fmt.Printf("merge sort, n = %d\n\n", n)

	// --- RAM model ---
	start := time.Now()
	sorted, comps := psort.MergeSort(xs)
	elapsed := time.Since(start)
	fmt.Println("RAM model:")
	fmt.Printf("  comparisons: %d (n·log2(n) = %.0f)\n", comps, float64(n)*math.Log2(n))
	fmt.Printf("  wall clock:  %v, sorted: %v\n\n", elapsed.Round(time.Microsecond), isSorted(sorted))

	// --- parallel model ---
	fmt.Println("parallel model (fork-join DAG):")
	for _, pm := range []bool{false, true} {
		work, span, err := psort.MergeSortDAG(int64(n), pm)
		if err != nil {
			log.Fatal(err)
		}
		kind := "serial merge  "
		if pm {
			kind = "parallel merge"
		}
		fmt.Printf("  %s: work %d, span %d, parallelism %.0fx\n", kind, work, span, float64(work)/float64(span))
	}
	start = time.Now()
	par := psort.ParallelMergeSort(xs, 4)
	fmt.Printf("  measured goroutine run: %v, sorted: %v\n\n", time.Since(start).Round(time.Microsecond), isSorted(par))

	// --- I/O model ---
	fmt.Println("I/O model (external merge sort, B=64 records, M=4096 records):")
	dev, err := iomodel.NewDevice(64)
	if err != nil {
		log.Fatal(err)
	}
	in := dev.NewFileFrom(xs)
	dev.ResetCounters()
	out, st, err := iomodel.ExternalMergeSort(in, 4096, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  initial runs: %d, merge passes: %d (fanout %d)\n", st.InitialRuns, st.MergePasses, st.Fanout)
	fmt.Printf("  block transfers: %d (model bound %d), sorted: %v\n",
		st.IOs, iomodel.SortIOBound(n, 4096, 64, st.Fanout), out.IsSorted())
	fmt.Printf("  versus naive one-record-at-a-time access: %d transfers\n", 2*n)
}

func isSorted(xs []int64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}
