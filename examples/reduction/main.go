// GPU-style parallel reduction — the CS40 CUDA exercise ("parallel
// reductions on large arrays") on the SIMT simulator: compare the
// interleaved and sequential addressing schemes on divergence and
// coalescing, and vector addition coalesced versus strided. Run with:
//
//	go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	"repro/internal/simd"
)

func main() {
	const n = 1 << 15
	xs := make([]float64, n)
	var want float64
	for i := range xs {
		xs[i] = float64(i % 101)
		want += xs[i]
	}

	fmt.Printf("parallel reduction of %d elements, 256-thread blocks\n\n", n)
	fmt.Printf("%-14s %10s %12s %12s %12s\n", "scheme", "sum ok", "branches", "divergent", "div rate")
	for _, scheme := range []simd.ReductionScheme{simd.Interleaved, simd.Sequential} {
		got, st, err := simd.Reduce(xs, 256, scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10v %12d %12d %11.1f%%\n",
			scheme, got == want, st.Branches, st.DivergentBranches, 100*st.DivergenceRate())
	}

	fmt.Println("\nvector add, coalesced vs strided access:")
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = float64(i), float64(2*i)
	}
	_, coal, err := simd.VecAdd(a, b, 128)
	if err != nil {
		log.Fatal(err)
	}
	_, strided, err := simd.VecAddStrided(a, b, 128, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %14s %14s %12s\n", "layout", "accesses", "transactions", "efficiency")
	fmt.Printf("%-14s %14d %14d %11.1f%%\n", "coalesced", coal.GlobalAccesses, coal.GlobalTransactions, 100*coal.CoalescingEfficiency())
	fmt.Printf("%-14s %14d %14d %11.1f%%\n", "strided", strided.GlobalAccesses, strided.GlobalTransactions, 100*strided.CoalescingEfficiency())
	fmt.Printf("\nthe strided kernel moves %.1fx more memory segments for the same work\n",
		float64(strided.GlobalTransactions)/float64(coal.GlobalTransactions))
}
