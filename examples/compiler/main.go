// The CS75 pipeline end-to-end: compile a MiniC program to SWAT32, show
// the generated assembly, run it on the CPU simulator, and feed the
// dynamic trace through the pipeline model — connecting three courses
// (CS75 compilation, CS31 assembly/stack, Table II pipelining) exactly
// the way the paper says the CS31 prerequisite enables. Run with:
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/isa"
	"repro/internal/minicc"
)

const program = `
// Collatz trajectory lengths: the longest below 80.
int collatzLen(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;
}
int main() {
    int best = 0;
    int bestN = 1;
    int n = 1;
    while (n < 80) {
        int len = collatzLen(n);
        if (len > best) { best = len; bestN = n; }
        n = n + 1;
    }
    print(bestN);
    print(best);
    return 0;
}`

func main() {
	fmt.Println("MiniC source:")
	fmt.Println(program)

	asm, err := minicc.Compile(program, true)
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(asm, "\n")
	fmt.Printf("generated SWAT32 assembly (%d lines; first 25):\n", len(lines))
	for _, ln := range lines[:25] {
		fmt.Println("   ", ln)
	}
	fmt.Println("    ...")

	prog, err := isa.Assemble(asm)
	if err != nil {
		log.Fatal(err)
	}
	cpu := isa.NewCPU(prog)
	var trace []isa.TraceEntry
	cpu.Trace = func(te isa.TraceEntry) { trace = append(trace, te) }
	if err := cpu.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution output (longest Collatz trajectory below 80):\n%s", cpu.Output.String())
	fmt.Printf("[%d dynamic instructions]\n\n", cpu.Steps)

	fmt.Println("the same trace through the Table II pipeline models:")
	for _, cfg := range []isa.PipelineConfig{
		{Forwarding: false, Branch: isa.StallOnBranch, Width: 1},
		{Forwarding: true, Branch: isa.StallOnBranch, Width: 1},
		{Forwarding: true, Branch: isa.PredictNotTaken, Width: 1},
		{Forwarding: true, Branch: isa.PredictNotTaken, Width: 2},
	} {
		st := isa.SimulatePipeline(trace, cfg)
		fmt.Printf("  fwd=%-5v %-17v width=%d: %7d cycles, CPI %.3f\n",
			cfg.Forwarding, cfg.Branch, cfg.Width, st.Cycles, st.CPI())
	}

	// The optimization ablation.
	_, plain, err := minicc.CompileToProgram(program, false)
	if err != nil {
		log.Fatal(err)
	}
	_, opt, err := minicc.CompileToProgram(program, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncode size: %d instructions unoptimized, %d with -O\n",
		plain.Instructions, opt.Instructions)
}
