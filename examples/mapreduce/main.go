// MapReduce word count — the CS87 Hadoop-lab workload — including a run
// with injected worker failures to show task re-execution, and an
// inverted index as the second job. Run with:
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/mapreduce"
)

var corpus = []string{
	"parallel and distributed computing belongs in every course",
	"every student should see threads and message passing",
	"parallel thinking changes how students see every problem",
	"message passing and shared memory are two views of one problem",
}

func main() {
	fmt.Println("word count over", len(corpus), "documents:")
	res, st, err := mapreduce.Run(
		mapreduce.Config{Workers: 4, Reducers: 3, Combiner: mapreduce.WordCountReduce},
		corpus, mapreduce.WordCountMap, mapreduce.WordCountReduce)
	if err != nil {
		log.Fatal(err)
	}
	printTop(res, 8)
	fmt.Printf("  [%d map tasks, %d reducers, %d intermediate pairs after combining]\n\n",
		st.MapTasks, st.ReduceTasks, st.Intermediate)

	fmt.Println("same job with every map task failing once (re-execution):")
	res2, st2, err := mapreduce.Run(mapreduce.Config{
		Workers: 4, Reducers: 3, MaxAttempts: 3,
		FailTask: func(phase string, task, attempt int) bool {
			return phase == "map" && attempt == 1
		},
	}, corpus, mapreduce.WordCountMap, mapreduce.WordCountReduce)
	if err != nil {
		log.Fatal(err)
	}
	same := len(res) == len(res2)
	for k, v := range res {
		if res2[k] != v {
			same = false
		}
	}
	fmt.Printf("  retries: %d, results identical to failure-free run: %v\n\n", st2.Retries, same)

	fmt.Println("inverted index:")
	docs := make([]string, len(corpus))
	for i, body := range corpus {
		docs[i] = fmt.Sprintf("d%d\t%s", i+1, body)
	}
	idx, _, err := mapreduce.Run(mapreduce.Config{Workers: 4, Reducers: 2},
		docs, mapreduce.InvertedIndexMap, mapreduce.InvertedIndexReduce)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []string{"parallel", "message", "every", "threads"} {
		fmt.Printf("  %-10s -> %s\n", w, idx[w])
	}
}

func printTop(res map[string]string, k int) {
	type wc struct {
		w string
		c string
	}
	all := make([]wc, 0, len(res))
	for w, c := range res {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if len(all[i].c) != len(all[j].c) {
			return len(all[i].c) > len(all[j].c)
		}
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if k > len(all) {
		k = len(all)
	}
	for _, e := range all[:k] {
		fmt.Printf("  %-12s %s\n", e.w, e.c)
	}
}
