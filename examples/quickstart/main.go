// Quickstart: a tour of the library, one stop per curriculum layer —
// data representation, gate-level ALU, assembly, caches, threads, the
// parallel Game of Life, PRAM work/span, and message passing. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/isa"
	"repro/internal/life"
	"repro/internal/logic"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/minicc"
	"repro/internal/mp"
	"repro/internal/omp"
	"repro/internal/pram"
	"repro/internal/pthread"
)

func main() {
	fmt.Println("== CS31: data representation ==")
	x := bits.NewInt(-100, 8)
	y := bits.NewInt(-29, 8)
	sum, flags, err := bits.Add(x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %v + %v = %v (overflow=%v)\n", x.Int64(), y.Int64(), sum.Int64(), flags.Overflow)
	fmt.Printf("  float 0.1 is %s\n", bits.FormatFloat32(0.1))

	fmt.Println("== CS31: a gate-level ALU ==")
	alu := logic.NewALU(8)
	res, fl, err := alu.Run(200, 100, logic.ALUAdd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  200 + 100 (8-bit) = %d, carry=%v; %d gates, depth %d\n",
		res, fl.Carry, alu.Circuit.GateCount(), mustDepth(alu))

	fmt.Println("== CS31: assembly on SWAT32 ==")
	cpu, err := isa.RunProgram(`
main:
    movl $7, %eax
    imull %eax, %eax
    sys $1
    halt`, nil, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  7*7 = %s", cpu.Output.String())

	fmt.Println("== CS31: cache locality ==")
	rowC, _ := mem.NewCache(mem.CacheConfig{SizeBytes: 4096, BlockBytes: 64, Assoc: 1})
	colC, _ := mem.NewCache(mem.CacheConfig{SizeBytes: 4096, BlockBytes: 64, Assoc: 1})
	mem.ReplayCache(rowC, mem.RowMajorTrace(64, 0))
	mem.ReplayCache(colC, mem.ColMajorTrace(64, 0))
	fmt.Printf("  64x64 sum: row-major misses %.1f%%, column-major %.1f%%\n",
		100*rowC.Stats().MissRate(), 100*colC.Stats().MissRate())

	fmt.Println("== CS31: threads and synchronization ==")
	mu := pthread.NewMutex(pthread.MutexNormal)
	counter := 0
	ths := pthread.Spawn(4, func(pthread.ID, int) {
		for i := 0; i < 1000; i++ {
			mu.Lock()
			counter++
			mu.Unlock()
		}
	})
	if err := pthread.JoinAll(ths); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  4 threads x 1000 increments = %d\n", counter)

	fmt.Println("== CS31: parallel Game of Life ==")
	g, _ := life.NewGrid(64, 64, life.Torus)
	g.Seed(0.3, 42)
	seq := g.Clone()
	seq.StepN(10)
	if err := g.StepNParallel(10, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  10 generations, 4 threads: matches sequential = %v, population %d\n",
		g.Equal(seq), g.Population())

	fmt.Println("== CS41: PRAM and work/span ==")
	xs := make([]int64, 1024)
	for i := range xs {
		xs[i] = int64(i)
	}
	total, m, err := pram.Sum(pram.EREW, xs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  EREW sum of 1024 elements = %d in %d steps (work %d)\n", total, m.Steps(), m.Work())
	fmt.Printf("  Amdahl: f=0.05 limits speedup to %.0fx\n", metrics.AmdahlLimit(0.05))

	fmt.Println("== CS87: message passing ==")
	err = mp.Run(8, func(c *mp.Comm) error {
		res, err := c.Allreduce([]int64{int64(c.Rank())}, func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("  allreduce over 8 ranks: sum of ranks = %d\n", res[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== CS75: compile MiniC to SWAT32 ==")
	out, _, steps, err := minicc.Run(`
int main() { print(6 * 7); return 0; }`, true, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  compiled program printed %s  (%d instructions executed)\n",
		strings.TrimSpace(out), steps)

	fmt.Println("== CS87: OpenMP-style worksharing ==")
	reduced, _, err := omp.ForReduce(1, 101, omp.Config{Threads: 4, Schedule: omp.Dynamic, Chunk: 8},
		0, func(i int) int64 { return int64(i) }, func(a, b int64) int64 { return a + b })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  parallel-for reduction of 1..100 = %d\n", reduced)

	fmt.Println("== CS44: consistent-hashing DHT ==")
	d, err := db.NewDHT(64)
	if err != nil {
		log.Fatal(err)
	}
	d.AddNode("a")
	d.AddNode("b")
	d.AddNode("c")
	for i := 0; i < 900; i++ {
		d.Put(fmt.Sprintf("key-%d", i), "v")
	}
	before := d.Moves()
	d.AddNode("d")
	fmt.Printf("  900 keys over 3 nodes; adding a 4th moved only %d keys\n", d.Moves()-before)

	fmt.Println("== The curriculum itself ==")
	cu, err := core.Swarthmore()
	if err != nil {
		log.Fatal(err)
	}
	gaps := cu.CoreGaps(core.TCPPCore())
	fmt.Printf("  %d courses modelled; uncovered TCPP core topics: %d\n", len(cu.Courses), len(gaps))
}

func mustDepth(alu *logic.ALU) int {
	d, err := alu.Circuit.Depth(alu.Zero)
	if err != nil {
		log.Fatal(err)
	}
	return d
}
