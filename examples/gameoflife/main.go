// Game of Life: the CS31 lab pair end-to-end. Watch a glider cross a
// torus, verify the parallel engine against the sequential one, then run
// the scalability study from the final lab (Table I row 8). Run with:
//
//	go run ./examples/gameoflife
package main

import (
	"fmt"
	"log"

	"repro/internal/life"
)

func main() {
	// Part 1 (sequential lab): evolve a glider and print a few frames.
	g, err := life.NewGrid(12, 8, life.Torus)
	if err != nil {
		log.Fatal(err)
	}
	glider, err := life.Parse(life.PatternGlider, life.Torus)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Place(glider, 1, 1); err != nil {
		log.Fatal(err)
	}
	for frame := 0; frame <= 8; frame += 4 {
		fmt.Printf("generation %d:\n%s\n", g.Generation(), g)
		g.StepN(4)
	}

	// Part 2 (parallel lab): correctness first, like the lab handout says.
	big, _ := life.NewGrid(128, 128, life.Torus)
	big.Seed(0.3, 7)
	ref := big.Clone()
	ref.StepN(20)
	if err := big.StepNParallel(20, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel(4 threads) matches sequential after 20 generations: %v\n\n", big.Equal(ref))

	// Part 3: the scalability study and report table.
	fmt.Println("scalability study (256x256, 10 generations):")
	res, err := life.ScalabilityStudy(256, 10, []int{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table)
}
